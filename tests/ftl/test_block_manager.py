import pytest

from repro.common.errors import DeviceFullError
from repro.flash.device import FlashDevice
from repro.flash.page import NULL_PPA, OOBMetadata
from repro.ftl.block_manager import BlockKind, BlockManager, StreamId

from tests.conftest import small_geometry


@pytest.fixture
def bm():
    return BlockManager(FlashDevice(small_geometry()))


def program(bm, ppa, lpa=0):
    bm.device.program_page(ppa, b"d", OOBMetadata(lpa, NULL_PPA, 0))
    bm.mark_valid(ppa)


def test_all_blocks_start_free(bm):
    assert bm.free_block_count == bm.device.geometry.total_blocks


def test_allocation_consumes_blocks_lazily(bm):
    geo = bm.device.geometry
    ppb = geo.pages_per_block
    channels = geo.channels
    # Striped user allocation opens one append block per channel, then
    # fills them all before opening more.
    for _ in range(channels * ppb):
        program(bm, bm.allocate_page(StreamId.USER))
    assert bm.free_block_count == geo.total_blocks - channels
    program(bm, bm.allocate_page(StreamId.USER))
    assert bm.free_block_count == geo.total_blocks - channels - 1


def test_unstriped_stream_fills_one_block_at_a_time(bm):
    geo = bm.device.geometry
    key = ("delta", 0)
    for _ in range(geo.pages_per_block):
        ppa = bm.allocate_page_keyed(key, BlockKind.DELTA)
        bm.device.program_page(ppa, b"d", OOBMetadata(0, NULL_PPA, 0))
    assert bm.free_block_count == geo.total_blocks - 1


def test_streams_use_distinct_blocks(bm):
    a = bm.allocate_page(StreamId.USER)
    program(bm, a)
    b = bm.allocate_page(StreamId.GC)
    geo = bm.device.geometry
    assert geo.block_of_page(a) != geo.block_of_page(b)


def test_allocation_stripes_channels(bm):
    geo = bm.device.geometry
    ppb = geo.pages_per_block
    channels = []
    for _ in range(4 * ppb):
        ppa = bm.allocate_page(StreamId.USER)
        program(bm, ppa)
        channels.append(geo.channel_of_page(ppa))
    # Four full blocks worth: all channels used.
    assert set(channels) == set(range(geo.channels))


def test_validity_tracking(bm):
    ppa = bm.allocate_page(StreamId.USER)
    program(bm, ppa)
    assert bm.is_valid(ppa)
    bm.invalidate_page(ppa)
    assert not bm.is_valid(ppa)
    pba = bm.device.geometry.block_of_page(ppa)
    assert bm.invalid_count(pba) == 1
    assert bm.valid_count(pba) == 0


def test_double_invalidate_is_idempotent(bm):
    ppa = bm.allocate_page(StreamId.USER)
    program(bm, ppa)
    bm.invalidate_page(ppa)
    bm.invalidate_page(ppa)
    pba = bm.device.geometry.block_of_page(ppa)
    assert bm.valid_count(pba) == 0


def test_greedy_victim_prefers_most_invalid(bm):
    geo = bm.device.geometry
    ppb = geo.pages_per_block
    # Fill two blocks via unstriped streams so layout is deterministic;
    # invalidate 1 page of the first, all of the second.
    first_block, second_block = [], []
    for _ in range(ppb):
        ppa = bm.allocate_page_keyed("a", BlockKind.DATA)
        program(bm, ppa)
        first_block.append(ppa)
    for _ in range(ppb):
        ppa = bm.allocate_page_keyed("b", BlockKind.DATA)
        program(bm, ppa)
        second_block.append(ppa)
    bm.invalidate_page(first_block[0])
    for p in second_block:
        bm.invalidate_page(p)
    victim = bm.select_greedy_victim(BlockKind.DATA)
    assert victim == geo.block_of_page(second_block[0])


def test_victim_ignores_active_blocks(bm):
    ppa = bm.allocate_page(StreamId.USER)
    program(bm, ppa)
    bm.invalidate_page(ppa)
    # Block not sealed -> not a victim.
    assert bm.select_greedy_victim(BlockKind.DATA) is None


def test_release_requires_no_valid_pages(bm):
    geo = bm.device.geometry
    for _ in range(geo.pages_per_block):
        program(bm, bm.allocate_page(StreamId.USER))
    pba = geo.block_of_page(0)
    from repro.common.errors import AddressError

    with pytest.raises(AddressError):
        bm.release_block(pba)


def test_exhaustion_raises(bm):
    geo = bm.device.geometry
    with pytest.raises(DeviceFullError):
        for _ in range(geo.total_pages + 1):
            program(bm, bm.allocate_page(StreamId.USER))


def test_keyed_streams_are_independent(bm):
    a = bm.allocate_page_keyed(("delta", 1), BlockKind.DELTA)
    bm.device.program_page(a, b"d", OOBMetadata(0, NULL_PPA, 0))
    b = bm.allocate_page_keyed(("delta", 2), BlockKind.DELTA)
    geo = bm.device.geometry
    assert geo.block_of_page(a) != geo.block_of_page(b)
    assert bm.kind(geo.block_of_page(a)) is BlockKind.DELTA


def test_close_stream_returns_active_block(bm):
    a = bm.allocate_page_keyed(("delta", 1), BlockKind.DELTA)
    pba = bm.device.geometry.block_of_page(a)
    assert bm.close_stream(("delta", 1)) == pba
    assert bm.close_stream(("delta", 1)) is None


def test_utilization(bm):
    assert bm.utilization() == 0.0
    program(bm, bm.allocate_page(StreamId.USER))
    assert bm.utilization() > 0.0
