"""Shared fixtures: small device geometries so tests run in milliseconds."""

import random

import pytest

from repro.common.units import SECOND_US
from repro.flash.geometry import FlashGeometry
from repro.flash.timing import FlashTiming
from repro.ftl.ssd import RegularSSD, SSDConfig
from repro.timessd.config import ContentMode, TimeSSDConfig
from repro.timessd.ssd import TimeSSD


def small_geometry(**overrides):
    params = dict(
        channels=4,
        chips_per_channel=1,
        planes_per_chip=1,
        blocks_per_plane=16,
        pages_per_block=16,
        page_size=512,
    )
    params.update(overrides)
    return FlashGeometry(**params)


def make_regular_ssd(**config_overrides):
    params = dict(geometry=small_geometry())
    params.update(config_overrides)
    return RegularSSD(SSDConfig(**params))


def make_timessd(**config_overrides):
    params = dict(
        geometry=small_geometry(),
        retention_floor_us=2 * SECOND_US,
        bloom_capacity=128,
        bloom_segment_max_age_us=SECOND_US // 2,
        content_mode=ContentMode.MODELED,
    )
    params.update(config_overrides)
    return TimeSSD(TimeSSDConfig(**params))


def fill_and_churn(ssd, working_set, churn_writes, seed=7, gap_us=1500):
    """Sequential fill then uniform-random overwrites with a fixed seed."""
    rng = random.Random(seed)
    for lpa in range(working_set):
        ssd.write(lpa)
        ssd.clock.advance(gap_us)
    for _ in range(churn_writes):
        ssd.write(rng.randrange(working_set))
        ssd.clock.advance(gap_us)
    return ssd


@pytest.fixture
def geometry():
    return small_geometry()


@pytest.fixture
def regular_ssd():
    return make_regular_ssd()


@pytest.fixture
def timessd():
    return make_timessd()
