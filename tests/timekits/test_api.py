import random

import pytest

from repro.common.errors import QueryError
from repro.common.units import SECOND_US
from repro.timekits.api import QueryResult, TimeKits, pick_as_of
from repro.timessd.index import Version

from tests.conftest import make_regular_ssd, make_timessd


@pytest.fixture
def kit():
    ssd = make_timessd(retention_floor_us=3600 * SECOND_US)
    return TimeKits(ssd)


def write_history(ssd, lpa, n, gap_us=1000):
    stamps = []
    for _ in range(n):
        stamps.append(ssd.clock.now_us)
        ssd.write(lpa)
        ssd.clock.advance(gap_us)
    return stamps


def test_requires_timessd():
    with pytest.raises(QueryError):
        TimeKits(make_regular_ssd())


def testpick_as_of_picks_newest_at_or_before():
    versions = [Version(0, ts, None, "x") for ts in (30, 20, 10)]
    assert pick_as_of(versions, 25).timestamp_us == 20
    assert pick_as_of(versions, 30).timestamp_us == 30
    assert pick_as_of(versions, 5).timestamp_us == 10  # oldest fallback
    assert pick_as_of([], 5) is None


class TestAddrQueries:
    def test_addr_query_returns_state_as_of_t(self, kit):
        stamps = write_history(kit.ssd, 4, 5)
        result = kit.addr_query(4, cnt=1, t=stamps[2])
        assert result.value[4].timestamp_us == stamps[2]
        assert result.elapsed_us > 0

    def test_addr_query_range_filters_window(self, kit):
        stamps = write_history(kit.ssd, 4, 6)
        result = kit.addr_query_range(4, 1, stamps[1], stamps[3])
        got = [v.timestamp_us for v in result.value[4]]
        assert got == [stamps[3], stamps[2], stamps[1]]

    def test_addr_query_all_returns_everything(self, kit):
        stamps = write_history(kit.ssd, 4, 5)
        result = kit.addr_query_all(4)
        assert [v.timestamp_us for v in result.value[4]] == stamps[::-1]

    def test_multi_lpa_query(self, kit):
        for lpa in (1, 2, 3):
            write_history(kit.ssd, lpa, 2)
        result = kit.addr_query_all(1, cnt=3)
        assert set(result.value) == {1, 2, 3}

    def test_bad_range_rejected(self, kit):
        with pytest.raises(QueryError):
            kit.addr_query(0, cnt=0)
        with pytest.raises(QueryError):
            kit.addr_query(kit.ssd.logical_pages, cnt=1)
        with pytest.raises(QueryError):
            kit.addr_query_range(0, 1, t1=10, t2=5)

    def test_threads_reduce_elapsed_time(self, kit):
        for lpa in range(32):
            write_history(kit.ssd, lpa, 3, gap_us=100)
        serial = kit.addr_query_all(0, cnt=32, threads=1)
        parallel = kit.addr_query_all(0, cnt=32, threads=4)
        assert parallel.elapsed_us < serial.elapsed_us
        assert {k: [v.timestamp_us for v in vs] for k, vs in serial.value.items()} == {
            k: [v.timestamp_us for v in vs] for k, vs in parallel.value.items()
        }


class TestTimeQueries:
    def test_time_query_finds_recent_updates(self, kit):
        write_history(kit.ssd, 1, 2)
        mark = kit.ssd.clock.now_us
        write_history(kit.ssd, 2, 2)
        result = kit.time_query(mark)
        assert 2 in result.value
        assert 1 not in result.value

    def test_time_query_range(self, kit):
        s1 = write_history(kit.ssd, 1, 2)
        s2 = write_history(kit.ssd, 2, 2)
        result = kit.time_query_range(s2[0], s2[-1])
        assert set(result.value) == {2}
        with pytest.raises(QueryError):
            kit.time_query_range(10, 5)

    def test_time_query_all_covers_all_mapped(self, kit):
        for lpa in (3, 5, 9):
            write_history(kit.ssd, lpa, 1)
        result = kit.time_query_all()
        assert set(result.value) == {3, 5, 9}

    def test_time_query_scans_cost_scales_with_device(self, kit):
        for lpa in range(64):
            kit.ssd.write(lpa)
        result = kit.time_query_all()
        assert result.elapsed_us >= 64 / kit.ssd.device.geometry.channels * kit.ssd.device.timing.read_us


class TestRollback:
    def test_rollback_restores_old_state(self):
        ssd = make_timessd(
            retention_floor_us=3600 * SECOND_US,
        )
        from repro.timessd.config import ContentMode, TimeSSDConfig

        # Use real content so we can check actual bytes.
        from tests.conftest import small_geometry

        ssd = type(ssd)(
            TimeSSDConfig(
                geometry=small_geometry(),
                retention_floor_us=3600 * SECOND_US,
                content_mode=ContentMode.REAL,
            )
        )
        kit = TimeKits(ssd)
        ssd.write(7, b"old-state".ljust(512, b"\0"))
        t_old = ssd.clock.now_us
        ssd.clock.advance(1000)
        ssd.write(7, b"new-state".ljust(512, b"\0"))
        ssd.clock.advance(1000)
        kit.rollback(7, cnt=1, t=t_old)
        assert ssd.read(7)[0].startswith(b"old-state")

    def test_rollback_is_itself_undoable(self, kit):
        stamps = write_history(kit.ssd, 7, 3)
        pre_rollback_ts = kit.ssd.clock.now_us
        kit.rollback(7, t=stamps[0])
        versions, _ = kit.ssd.version_chain(7)
        # All three original versions plus the rollback write remain.
        assert len(versions) == 4

    def test_rollback_to_current_state_is_noop(self, kit):
        stamps = write_history(kit.ssd, 7, 2)
        writes_before = kit.ssd.host_pages_written
        result = kit.rollback(7, t=kit.ssd.clock.now_us)
        assert kit.ssd.host_pages_written == writes_before
        assert result.value[7].timestamp_us == stamps[-1]

    def test_rollback_all(self, kit):
        first = {}
        for lpa in (1, 2):
            first[lpa] = write_history(kit.ssd, lpa, 1)[0]
        t = kit.ssd.clock.now_us
        kit.ssd.clock.advance(500)
        for lpa in (1, 2):
            write_history(kit.ssd, lpa, 1)
        result = kit.rollback_all(t)
        assert set(result.value) == {1, 2}
        for lpa in (1, 2):
            # Each LPA was rolled back to its first (pre-t) version...
            assert result.value[lpa].timestamp_us == first[lpa]
            versions, _ = kit.ssd.version_chain(lpa)
            # ...via a fresh write, so the chain grew to three versions.
            assert versions[0].timestamp_us > t
            assert len(versions) == 3


class TestQueryResult:
    def test_fields(self):
        r = QueryResult(value={"a": 1}, elapsed_us=10)
        assert r.value == {"a": 1}
        assert r.elapsed_us == 10


class TestPagesTouched:
    def test_queries_report_flash_reads(self):
        from tests.conftest import make_timessd
        from repro.common.units import SECOND_US

        ssd = make_timessd(retention_floor_us=3600 * SECOND_US)
        kit = TimeKits(ssd)
        for _ in range(4):
            ssd.write(3)
            ssd.clock.advance(1000)
        result = kit.addr_query_all(3)
        assert result.pages_touched == 4  # one read per chain hop
