import pytest

from repro.common.errors import QueryError
from repro.common.units import SECOND_US
from repro.timekits import FileRecovery, ForensicTimeline, TimeKits
from repro.timessd.config import ContentMode, TimeSSDConfig
from repro.timessd.ssd import TimeSSD

from tests.conftest import make_timessd, small_geometry


@pytest.fixture
def kit():
    ssd = TimeSSD(
        TimeSSDConfig(
            geometry=small_geometry(),
            retention_floor_us=3600 * SECOND_US,
            content_mode=ContentMode.REAL,
        )
    )
    return TimeKits(ssd)


def page(text):
    return text.encode().ljust(512, b"\0")


class TestFileRecovery:
    def test_requires_timekits(self):
        with pytest.raises(QueryError):
            FileRecovery(object())

    def test_recover_file_restores_all_pages(self, kit):
        ssd = kit.ssd
        lpas = [3, 9, 17]
        for lpa in lpas:
            ssd.write(lpa, page("good-%d" % lpa))
        t_good = ssd.clock.now_us
        ssd.clock.advance(1000)
        for lpa in lpas:
            ssd.write(lpa, page("ENCRYPTED"))
        ssd.clock.advance(1000)
        recovery = FileRecovery(kit)
        outcome = recovery.recover_file("doc.txt", lpas, t_good, threads=2)
        assert outcome.complete
        assert outcome.elapsed_us > 0
        for lpa in lpas:
            assert ssd.read(lpa)[0].startswith(b"good-")

    def test_peek_file_does_not_modify(self, kit):
        ssd = kit.ssd
        ssd.write(5, page("v1"))
        t1 = ssd.clock.now_us
        ssd.clock.advance(1000)
        ssd.write(5, page("v2"))
        recovery = FileRecovery(kit)
        pages, _elapsed = recovery.peek_file("f", [5], t1)
        assert pages[5].startswith(b"v1")
        assert ssd.read(5)[0].startswith(b"v2")  # unchanged


class TestForensicTimeline:
    def test_events_since_sorted(self, kit):
        ssd = kit.ssd
        for lpa in (4, 2, 8):
            ssd.write(lpa, page("x"))
            ssd.clock.advance(500)
        timeline = ForensicTimeline(kit)
        events, elapsed = timeline.events_since(0)
        stamps = [e.timestamp_us for e in events]
        assert stamps == sorted(stamps)
        assert {e.lpa for e in events} == {4, 2, 8}

    def test_histogram_detects_burst(self, kit):
        ssd = kit.ssd
        ssd.write(0, page("quiet"))
        ssd.clock.advance(10 * SECOND_US)
        burst_start = ssd.clock.now_us
        for lpa in range(1, 30):
            ssd.write(lpa, page("burst"))
            ssd.clock.advance(1000)
        burst_end = ssd.clock.now_us
        timeline = ForensicTimeline(kit)
        counts, bucket_us, _ = timeline.activity_histogram(0, burst_end, buckets=10)
        assert max(counts) >= 10  # the burst concentrates in few buckets
        assert counts[0] <= 2

    def test_histogram_validates_args(self, kit):
        timeline = ForensicTimeline(kit)
        with pytest.raises(ValueError):
            timeline.activity_histogram(10, 5)

    def test_touched_lpas_between(self, kit):
        ssd = kit.ssd
        ssd.write(1, page("a"))
        t1 = ssd.clock.now_us
        ssd.clock.advance(1000)
        ssd.write(2, page("b"))
        t2 = ssd.clock.now_us
        timeline = ForensicTimeline(kit)
        touched, _ = timeline.touched_lpas_between(t1, t2)
        assert touched == {2} or touched == {1, 2}  # boundary inclusive
