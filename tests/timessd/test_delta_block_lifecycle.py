"""Delta-block lifecycle: dedicated per-segment blocks, wholesale erase."""

import pytest

from repro.common.units import SECOND_US
from repro.ftl.block_manager import BlockKind

from tests.conftest import make_timessd, small_geometry


def build_history(ssd, lpa=0):
    """Overwrite one LPA enough to fill blocks, then force compression."""
    geo = ssd.device.geometry
    for _ in range(geo.channels * geo.pages_per_block + 8):
        ssd.write(lpa)
        ssd.clock.advance(800)
    victim = ssd.block_manager.select_greedy_victim(BlockKind.DATA)
    assert victim is not None
    ssd.collector.reclaim_block(victim, ssd.clock.now_us)
    # Force the RAM buffers out so delta blocks exist on flash.
    for segment_id in list(ssd.deltas.live_segment_ids()):
        ssd.deltas.flush_segment(segment_id, ssd.clock.now_us)


def delta_blocks(ssd):
    return [
        pba
        for pba in range(ssd.device.geometry.total_blocks)
        if ssd.block_manager.kind(pba) is BlockKind.DELTA
    ]


def test_deltas_live_in_dedicated_blocks():
    ssd = make_timessd(retention_floor_us=3600 * SECOND_US)
    build_history(ssd)
    blocks = delta_blocks(ssd)
    assert blocks, "compression should have produced delta blocks"
    # Delta blocks hold only delta pages — never user data.
    from repro.timessd.delta import DeltaPage

    for pba in blocks:
        block = ssd.device.blocks[pba]
        for offset in range(block.write_pointer):
            assert isinstance(block.pages[offset].data, DeltaPage)


def test_delta_blocks_not_wear_swapped():
    """§3.8: wear leveling must not move delta blocks (it would break
    the delta-page chains)."""
    ssd = make_timessd(retention_floor_us=3600 * SECOND_US)
    build_history(ssd)
    before = set(delta_blocks(ssd))
    # Run the leveler aggressively; delta blocks must stay put.
    for _ in range(50):
        ssd.wear_leveler._maybe_swap(ssd.clock.now_us)
    assert before <= set(delta_blocks(ssd))


def test_segment_drop_erases_delta_blocks_wholesale():
    ssd = make_timessd(
        retention_floor_us=0,
        bloom_capacity=16,
        bloom_group_size=1,
        bloom_segment_max_age_us=200_000,
    )
    build_history(ssd)
    blocks_before = delta_blocks(ssd)
    erases_before = ssd.device.counters.block_erases
    reads_before = ssd.device.counters.page_reads
    dropped = 0
    while True:
        segment = ssd.retention.shrink()
        if segment is None:
            break
        ssd.deltas.drop_segment(segment.segment_id, ssd.clock.now_us)
        dropped += 1
    assert dropped > 0
    # Wholesale: erases happened with no migration reads.
    assert ssd.device.counters.block_erases > erases_before
    assert ssd.device.counters.page_reads == reads_before
    assert len(delta_blocks(ssd)) < max(1, len(blocks_before))


def test_dropped_segment_records_unreachable():
    ssd = make_timessd(
        retention_floor_us=0,
        bloom_capacity=16,
        bloom_group_size=1,
        bloom_segment_max_age_us=200_000,
    )
    build_history(ssd)
    count_before = len(ssd.version_chain(0)[0])
    while True:
        segment = ssd.retention.shrink()
        if segment is None:
            break
        ssd.deltas.drop_segment(segment.segment_id, ssd.clock.now_us)
    count_after = len(ssd.version_chain(0)[0])
    assert count_after <= count_before
    assert count_after >= 1  # the current version is untouchable
