import random

import pytest

from repro.common.errors import RetentionViolationError
from repro.common.units import SECOND_US
from repro.flash.page import NULL_PPA
from repro.ftl.block_manager import BlockKind
from repro.timessd.config import ContentMode, TimeSSDConfig
from repro.timessd.ssd import TimeSSD

from tests.conftest import make_timessd, small_geometry


def test_requires_timessd_config():
    from repro.ftl.ssd import SSDConfig

    with pytest.raises(TypeError):
        TimeSSD(SSDConfig(geometry=small_geometry()))


def test_behaves_like_regular_ssd_for_current_data():
    ssd = make_timessd(content_mode=ContentMode.REAL)
    page = bytes(512)
    ssd.write(3, page)
    assert ssd.read(3)[0] == page
    ssd.trim(3)
    assert ssd.read(3)[0] is None


def test_version_chain_without_gc():
    ssd = make_timessd()
    stamps = []
    for _ in range(5):
        ssd.write(9)
        stamps.append(ssd.clock.now_us)
        ssd.clock.advance(1000)
    versions, _ = ssd.version_chain(9)
    assert [v.source for v in versions][0] == "current"
    got = [v.timestamp_us for v in versions]
    assert got == sorted(got, reverse=True)
    assert len(got) == 5


def test_invalidation_registers_in_bloom():
    ssd = make_timessd()
    ssd.write(2)
    old_ppa = ssd.mapping.lookup(2)
    ssd.clock.advance(10)
    ssd.write(2)
    assert ssd.blooms.is_retained(old_ppa)
    assert ssd.retained_pages == 1


def test_trim_is_retained_too():
    ssd = make_timessd()
    ssd.write(2)
    old_ppa = ssd.mapping.lookup(2)
    ssd.trim(2)
    assert ssd.blooms.is_retained(old_ppa)


def churn(ssd, working_set, writes, seed=11, gap_us=1500):
    rng = random.Random(seed)
    history = {}
    for lpa in range(working_set):
        # OOB timestamps are stamped at program time (request arrival).
        history.setdefault(lpa, []).append(ssd.clock.now_us)
        ssd.write(lpa)
        ssd.clock.advance(gap_us)
    for _ in range(writes):
        lpa = rng.randrange(working_set)
        history.setdefault(lpa, []).append(ssd.clock.now_us)
        ssd.write(lpa)
        ssd.clock.advance(gap_us)
    return history


class TestRetentionUnderGC:
    def test_versions_survive_gc_as_deltas(self):
        ssd = make_timessd(
            geometry=small_geometry(blocks_per_plane=32),
            retention_floor_us=3600 * SECOND_US,
        )
        history = churn(ssd, working_set=ssd.logical_pages // 3, writes=2000)
        assert ssd.gc_runs > 0
        window_start = ssd.blooms.window_start_us()
        for lpa, stamps in history.items():
            versions, _ = ssd.version_chain(lpa)
            got = {v.timestamp_us for v in versions}
            # Every version invalidated inside the window must survive.
            # Version k is invalidated when version k+1 is written.
            for k, ts in enumerate(stamps[:-1]):
                if stamps[k + 1] > window_start:
                    assert ts in got, "lost version of lpa %d" % lpa
            assert stamps[-1] in got  # current version always present

    def test_chain_strictly_newest_first(self):
        ssd = make_timessd(retention_floor_us=3600 * SECOND_US)
        churn(ssd, ssd.logical_pages // 3, 500)
        for lpa in range(0, ssd.logical_pages // 3, 7):
            versions, _ = ssd.version_chain(lpa)
            stamps = [v.timestamp_us for v in versions]
            assert stamps == sorted(set(stamps), key=lambda s: -s)

    def test_real_content_roundtrips_through_deltas(self):
        ssd = make_timessd(
            geometry=small_geometry(blocks_per_plane=32),
            content_mode=ContentMode.REAL,
            retention_floor_us=3600 * SECOND_US,
        )
        rng = random.Random(2)
        content = {}
        working = ssd.logical_pages // 3
        base = {lpa: bytearray(rng.randrange(256) for _ in range(512)) for lpa in range(working)}
        for step in range(5 * working):
            lpa = rng.randrange(working)
            page = bytearray(base[lpa])
            # Mutate ~2% of bytes: realistic content locality.
            for _ in range(12):
                page[rng.randrange(512)] = rng.randrange(256)
            base[lpa] = page
            payload = bytes(page)
            content.setdefault(lpa, {})[ssd.clock.now_us] = payload
            ssd.write(lpa, payload)
            ssd.clock.advance(1500)
        assert ssd.gc_runs > 0
        checked = 0
        for lpa in list(content)[:40]:
            versions, _ = ssd.version_chain(lpa)
            for v in versions:
                expected = content[lpa].get(v.timestamp_us)
                if expected is not None:
                    assert v.data == expected
                    checked += 1
        assert checked > 40  # plenty of historical versions verified

    def test_delta_blocks_never_gc_victims(self):
        ssd = make_timessd(
            geometry=small_geometry(blocks_per_plane=32),
            retention_floor_us=3600 * SECOND_US,
        )
        churn(ssd, ssd.logical_pages // 3, 2000)
        victim = ssd.block_manager.select_greedy_victim(BlockKind.DATA)
        if victim is not None:
            assert ssd.block_manager.kind(victim) is not BlockKind.DELTA


class TestWindowShrinking:
    def test_overload_triggers_shrinks(self):
        ssd = make_timessd(retention_floor_us=0)
        churn(ssd, ssd.logical_pages // 2, 3000, gap_us=100)
        assert ssd.retention.shrinks > 0

    def test_expired_versions_disappear(self):
        ssd = make_timessd(retention_floor_us=0, bloom_capacity=64)
        history = churn(ssd, ssd.logical_pages // 2, 3000, gap_us=100)
        window_start = ssd.blooms.window_start_us()
        assert window_start > 0
        hot = max(history, key=lambda lpa: len(history[lpa]))
        versions, _ = ssd.version_chain(hot)
        assert len(versions) < len(history[hot])

    def test_floor_violation_stops_service(self):
        ssd = make_timessd(retention_floor_us=10**15)  # absurd floor
        with pytest.raises(RetentionViolationError) as excinfo:
            churn(ssd, ssd.logical_pages // 2, 5000, gap_us=10)
        assert excinfo.value.floor_us == 10**15

    def test_retention_window_metric_grows_without_pressure(self):
        ssd = make_timessd()
        ssd.write(0)
        ssd.clock.advance(10_000)
        ssd.write(0)
        assert ssd.retention_window_us() > 0


class TestBackgroundCompression:
    def test_idle_gaps_run_background_work(self):
        ssd = make_timessd()
        rng = random.Random(5)
        for lpa in range(200):
            ssd.write(lpa % 50)
            ssd.clock.advance(50_000)  # long, predictable idleness
        assert ssd.background_windows > 0
        assert ssd.background_compressed > 0

    def test_background_work_fits_inside_gap(self):
        ssd = make_timessd()
        for lpa in range(100):
            ssd.write(lpa % 20)
            before_busy = max(
                ssd.device.timelines.busy_until(c)
                for c in range(ssd.device.geometry.channels)
            )
            ssd.clock.advance(50_000)
            # Background work during the gap may not push channel
            # occupancy past the next arrival.
            assert before_busy <= ssd.clock.now_us

    def test_disabled_background_compression(self):
        ssd = make_timessd(background_compression=False)
        for lpa in range(200):
            ssd.write(lpa % 50)
            ssd.clock.advance(50_000)
        assert ssd.background_compressed == 0


class TestAccounting:
    def test_retained_counter_never_negative(self):
        ssd = make_timessd(retention_floor_us=0)
        churn(ssd, ssd.logical_pages // 2, 2000, gap_us=300)
        assert ssd.retained_pages >= 0
        assert all(v >= 0 for v in ssd._retained_per_block.values())

    def test_wa_at_least_regular(self):
        from tests.conftest import fill_and_churn, make_regular_ssd

        time_ssd = make_timessd(retention_floor_us=2 * SECOND_US)
        regular = make_regular_ssd()
        working = regular.logical_pages // 2
        fill_and_churn(time_ssd, working, 2500, gap_us=400)
        fill_and_churn(regular, working, 2500, gap_us=400)
        assert time_ssd.write_amplification >= regular.write_amplification * 0.95

    def test_estimator_sees_gc_ops(self):
        ssd = make_timessd(gc_overhead_period_writes=64, retention_floor_us=0)
        churn(ssd, ssd.logical_pages // 2, 2000, gap_us=200)
        assert ssd.estimator.periods_evaluated > 0
        assert ssd.gc_runs > 0
