"""Fault-injection matrix for the fsck (`timessd/verify.py`).

Each parametrized case corrupts exactly one audited structure —
mapping/PVT agreement, version-chain order, the PRT, the free pool,
the retention census, segment/delta agreement — and asserts the
auditor reports *that* violation class and nothing else.
"""

import random
import re

import pytest

from repro.common.units import SECOND_US
from repro.flash.page import OOBMetadata
from repro.ftl.block_manager import BlockKind
from repro.timessd.verify import DeviceAuditor

from tests.conftest import make_timessd, small_geometry


def quiet_ssd():
    """A device with a little history: cheap for structural corruptions."""
    ssd = make_timessd()
    for lpa in range(4):
        ssd.write(lpa)
        ssd.clock.advance(1000)
    ssd.write(3)  # give LPA 3 an old version
    ssd.clock.advance(1000)
    return ssd


def churned_ssd():
    """A device GC'd hard enough to carry live delta records."""
    ssd = make_timessd(
        geometry=small_geometry(blocks_per_plane=48),
        retention_floor_us=2 * SECOND_US,
        bloom_segment_max_age_us=SECOND_US,
    )
    rng = random.Random(7)
    working = ssd.logical_pages // 2
    for lpa in range(working):
        ssd.write(lpa)
        ssd.clock.advance(300)
    for _ in range(working * 4):
        ssd.write(rng.randrange(working))
        ssd.clock.advance(1500)
    return ssd


def live_delta_record(ssd):
    for lpa in range(ssd.logical_pages):
        record = ssd.index.delta_head(lpa)
        if record is not None and not record.dropped:
            return record
    raise AssertionError("churn produced no live delta records")


# --- Corruptors: each damages exactly one audited structure -------------------


def corrupt_mapping_head(ssd):
    ssd.block_manager.invalidate_page(ssd.mapping.lookup(3))


def corrupt_orphan_valid_page(ssd):
    old_ppa = ssd.device.peek_page(ssd.mapping.lookup(3)).oob.back_pointer
    ssd.block_manager.mark_valid(old_ppa)


def corrupt_chain_order(ssd):
    # A delta version stamped *after* the head breaks newest-first order
    # and the §3.7 delta-older-than-data invariant.
    live_delta_record(ssd).version_ts = ssd.clock.now_us + 10_000_000


def corrupt_prt(ssd):
    ssd.index.mark_reclaimable(ssd.mapping.lookup(3))


def corrupt_free_pool_count(ssd):
    ssd.block_manager._free_count += 1


def corrupt_free_pool_unerased(ssd):
    geo = ssd.device.geometry
    for pba in range(geo.total_blocks):
        if ssd.block_manager.kind(pba) is BlockKind.FREE:
            ssd.device.blocks[pba].program(
                0, b"ghost", OOBMetadata(lpa=0, timestamp_us=0)
            )
            return
    raise AssertionError("no FREE block to corrupt")


def corrupt_retention_census(ssd):
    ssd.retained_pages = -1


def corrupt_segment_agreement(ssd):
    # A live delta claiming membership of a segment that never existed.
    live_delta_record(ssd).segment_id = 999_999


CASES = [
    pytest.param(quiet_ssd, corrupt_mapping_head, r"head PPA \d+ not valid", id="mapping-pvt-head"),
    pytest.param(quiet_ssd, corrupt_orphan_valid_page, r"not any LPA's head", id="mapping-pvt-orphan"),
    pytest.param(churned_ssd, corrupt_chain_order, r"chain", id="chain-order"),
    pytest.param(quiet_ssd, corrupt_prt, r"reclaimable page \d+ is marked valid", id="prt"),
    pytest.param(quiet_ssd, corrupt_free_pool_count, r"free-block count", id="free-pool-count"),
    pytest.param(quiet_ssd, corrupt_free_pool_unerased, r"FREE block \d+ is not erased", id="free-pool-unerased"),
    pytest.param(quiet_ssd, corrupt_retention_census, r"negative retained-page", id="retention-census"),
    pytest.param(churned_ssd, corrupt_segment_agreement, r"in dead segment", id="segment-agreement"),
]


@pytest.mark.parametrize("build, corrupt, pattern", CASES)
def test_auditor_reports_exactly_the_corrupted_class(build, corrupt, pattern):
    ssd = build()
    assert DeviceAuditor(ssd).audit().clean, "device must start clean"
    corrupt(ssd)
    report = DeviceAuditor(ssd).audit()
    assert not report.clean, "corruption of %s went undetected" % pattern
    for violation in report.violations:
        assert re.search(pattern, violation), (
            "expected only %r-class violations, got: %s"
            % (pattern, report.violations)
        )
