"""Property-based tests on the time-segmented bloom chain."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.common.clock import SimClock
from repro.timessd.bloom import TimeSegmentedBlooms

EVENTS = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=4095),  # ppa
        st.integers(min_value=1, max_value=100_000),  # clock advance
    ),
    min_size=1,
    max_size=300,
)


@given(events=EVENTS, capacity=st.integers(2, 64), group=st.sampled_from([1, 4, 16]))
@settings(max_examples=60, deadline=None)
def test_no_false_negatives_while_undropped(events, capacity, group):
    clock = SimClock()
    blooms = TimeSegmentedBlooms(
        clock, capacity_per_filter=capacity, group_size=group, seed=2
    )
    recorded = set()
    for ppa, advance in events:
        clock.advance(advance)
        blooms.record_invalidation(ppa)
        recorded.add(ppa)
    # Without drops, every recorded page is retained — no false negatives.
    assert all(blooms.is_retained(ppa) for ppa in recorded)


@given(events=EVENTS, drops=st.integers(0, 10))
@settings(max_examples=40, deadline=None)
def test_window_start_monotonic_under_drops(events, drops):
    clock = SimClock()
    blooms = TimeSegmentedBlooms(clock, capacity_per_filter=4, group_size=1, seed=3)
    for ppa, advance in events:
        clock.advance(advance)
        blooms.record_invalidation(ppa)
    starts = [blooms.window_start_us()]
    for _ in range(drops):
        blooms.drop_oldest()
        starts.append(blooms.window_start_us())
    assert starts == sorted(starts)
    assert blooms.window_start_us() <= clock.now_us


@given(events=EVENTS)
@settings(max_examples=40, deadline=None)
def test_segments_are_time_ordered(events):
    clock = SimClock()
    blooms = TimeSegmentedBlooms(
        clock,
        capacity_per_filter=4,
        group_size=1,
        seed=4,
        max_segment_age_us=50_000,
    )
    for ppa, advance in events:
        clock.advance(advance)
        blooms.record_invalidation(ppa)
    live = blooms.live_segments()
    creations = [segment.created_us for segment in live]
    assert creations == sorted(creations)
    # Sealed segments precede the single active one.
    assert all(not segment.active for segment in live[:-1])
    assert live[-1].active


@given(events=EVENTS, floor=st.integers(0, 500_000))
@settings(max_examples=40, deadline=None)
def test_floor_always_respected_by_can_drop(events, floor):
    clock = SimClock()
    blooms = TimeSegmentedBlooms(clock, capacity_per_filter=2, group_size=1, seed=5)
    for ppa, advance in events:
        clock.advance(advance)
        blooms.record_invalidation(ppa)
    while blooms.can_drop_oldest(floor):
        live = blooms.live_segments()
        # The guarantee: after this drop the remaining window covers at
        # least the floor.
        assert clock.now_us - live[1].created_us >= floor
        blooms.drop_oldest()
