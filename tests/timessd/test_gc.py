import pytest

from repro.common.units import SECOND_US
from repro.ftl.block_manager import BlockKind

from tests.conftest import make_timessd, small_geometry


def versions_at(ssd, lpa):
    versions, _ = ssd.version_chain(lpa)
    return [v.timestamp_us for v in versions]


def fill_one_victim(ssd, lpa=0):
    """Create sealed blocks full of retained old versions of one LPA.

    Writes stripe across channels, so sealing a block takes
    ``channels * pages_per_block`` versions.
    """
    geo = ssd.device.geometry
    stamps = []
    for _ in range(geo.channels * geo.pages_per_block + 4):
        stamps.append(ssd.clock.now_us)
        ssd.write(lpa)
        ssd.clock.advance(1000)
    return stamps


class TestReclaimBlock:
    def test_reclaim_compresses_retained_history(self):
        ssd = make_timessd(retention_floor_us=3600 * SECOND_US)
        stamps = fill_one_victim(ssd)
        geo = ssd.device.geometry
        victim = ssd.block_manager.select_greedy_victim(BlockKind.DATA)
        assert victim is not None
        before = versions_at(ssd, 0)
        outcome = ssd.collector.reclaim_block(victim, ssd.clock.now_us)
        assert outcome.compressed > 0
        after = versions_at(ssd, 0)
        # All versions (notably those on the reclaimed block) survive.
        assert set(before) <= set(after) | set(before[:1])
        assert set(stamps) <= set(after)

    def test_reclaim_frees_the_block(self):
        ssd = make_timessd(retention_floor_us=3600 * SECOND_US)
        fill_one_victim(ssd)
        victim = ssd.block_manager.select_greedy_victim(BlockKind.DATA)
        free_before = ssd.block_manager.free_block_count
        ssd.collector.reclaim_block(victim, ssd.clock.now_us)
        assert ssd.block_manager.kind(victim) is BlockKind.FREE
        # The erased victim returns to the pool; the reclaim may have
        # opened fresh GC/delta append blocks (transient, they amortize).
        assert ssd.block_manager.free_block_count >= free_before - 2
        assert ssd.free_page_estimate() > 0

    def test_reclaim_discards_expired_pages(self):
        # group_size=1 so every invalidated PPA is a distinct filter
        # entry and segments roll over quickly.
        ssd = make_timessd(retention_floor_us=0, bloom_capacity=8, bloom_group_size=1)
        fill_one_victim(ssd)
        # Expire everything by recycling all but the active segment.
        while ssd.blooms.drop_oldest() is not None:
            pass
        victim = ssd.block_manager.select_greedy_victim(BlockKind.DATA)
        outcome = ssd.collector.reclaim_block(victim, ssd.clock.now_us)
        assert outcome.discarded_expired > 0
        # Only what the (undroppable) active segment still covers may be
        # retained — a handful at most.
        assert outcome.compressed <= 8
        assert outcome.discarded_expired > outcome.compressed

    def test_reclaim_skips_prt_marked_pages(self):
        ssd = make_timessd(retention_floor_us=3600 * SECOND_US)
        fill_one_victim(ssd)
        victim = ssd.block_manager.select_greedy_victim(BlockKind.DATA)
        # Background compression first: marks pages reclaimable.
        geo = ssd.device.geometry
        for ppa in geo.pages_of_block(victim):
            if not ssd.block_manager.is_valid(ppa) and not ssd.index.is_reclaimable(ppa):
                ssd.collector.compress_version_chain(ppa, ssd.clock.now_us)
                break  # one chain covers the whole single-LPA history
        outcome = ssd.collector.reclaim_block(victim, ssd.clock.now_us)
        assert outcome.discarded_reclaimable > 0

    def test_migrated_valid_pages_keep_mapping(self):
        ssd = make_timessd(retention_floor_us=3600 * SECOND_US)
        ppb = ssd.device.geometry.pages_per_block
        for lpa in range(ppb):
            ssd.write(lpa, None)
            ssd.clock.advance(100)
        victim = ssd.device.geometry.block_of_page(ssd.mapping.lookup(0))
        ssd.collector.reclaim_block(victim, ssd.clock.now_us)
        for lpa in range(ppb):
            assert ssd.mapping.is_mapped(lpa)

    def test_gc_counts_feed_estimator(self):
        ssd = make_timessd(
            retention_floor_us=3600 * SECOND_US, gc_overhead_period_writes=8
        )
        fill_one_victim(ssd)
        victim = ssd.block_manager.select_greedy_victim(BlockKind.DATA)
        ssd._collect_garbage(ssd.clock.now_us)
        for _ in range(8):
            ssd.write(1)
        assert ssd.estimator.periods_evaluated >= 1
        assert ssd.estimator.last_overhead_per_write_us > 0


class TestCompressionChainInvariant:
    def test_delta_chain_is_older_than_data_chain(self):
        """The §3.7 invariant: every delta version is older than every
        surviving data-page version of the same LPA."""
        ssd = make_timessd(
            geometry=small_geometry(blocks_per_plane=32),
            retention_floor_us=3600 * SECOND_US,
        )
        import random

        rng = random.Random(9)
        working = ssd.logical_pages // 3
        for _ in range(5 * working):
            ssd.write(rng.randrange(working))
            ssd.clock.advance(1200)
        checked = 0
        for lpa in range(0, working, 5):
            versions, _ = ssd.version_chain(lpa)
            data_ts = [v.timestamp_us for v in versions if v.source in ("current", "data-page")]
            delta_ts = [v.timestamp_us for v in versions if v.source.startswith("delta")]
            if data_ts and delta_ts:
                assert max(delta_ts) < min(data_ts)
                checked += 1
        assert checked > 0

    def test_wear_leveling_relocation_preserves_history(self):
        ssd = make_timessd(retention_floor_us=3600 * SECOND_US)
        stamps = fill_one_victim(ssd)
        pba = ssd.device.geometry.block_of_page(ssd.mapping.lookup(0))
        # Relocate via the wear-leveling entry point.
        before = set(versions_at(ssd, 0))
        ssd.relocate_block(pba, ssd.clock.now_us)
        after = set(versions_at(ssd, 0))
        assert before <= after
