import pytest

from repro.timessd.idle import IdlePredictor


def test_starts_pessimistic():
    predictor = IdlePredictor(threshold_us=10_000)
    assert not predictor.would_compress


def test_exponential_smoothing_formula():
    predictor = IdlePredictor(alpha=0.5)
    predictor.observe_gap(1000)
    assert predictor.predicted_us == pytest.approx(500)
    predictor.observe_gap(1000)
    assert predictor.predicted_us == pytest.approx(750)


def test_converges_to_steady_gap():
    predictor = IdlePredictor(alpha=0.5)
    for _ in range(30):
        predictor.observe_gap(20_000)
    assert predictor.predicted_us == pytest.approx(20_000, rel=1e-3)


def test_long_gaps_enable_compression():
    predictor = IdlePredictor(alpha=0.5, threshold_us=10_000)
    for _ in range(10):
        predictor.observe_gap(50_000)
    assert predictor.would_compress


def test_bursty_traffic_disables_compression():
    predictor = IdlePredictor(alpha=0.5, threshold_us=10_000)
    for _ in range(10):
        predictor.observe_gap(50_000)
    for _ in range(12):
        predictor.observe_gap(10)
    assert not predictor.would_compress


def test_alpha_bounds():
    with pytest.raises(ValueError):
        IdlePredictor(alpha=0)
    with pytest.raises(ValueError):
        IdlePredictor(alpha=1.5)


def test_negative_gap_rejected():
    with pytest.raises(ValueError):
        IdlePredictor().observe_gap(-1)


def test_gap_count_tracked():
    predictor = IdlePredictor()
    predictor.observe_gap(10)
    predictor.observe_gap(20)
    assert predictor.observed_gaps == 2
