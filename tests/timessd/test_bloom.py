import pytest
from hypothesis import given, settings, strategies as st

from repro.common.clock import SimClock
from repro.timessd.bloom import BloomFilter, TimeSegmentedBlooms


class TestBloomFilter:
    def test_added_items_are_found(self):
        bf = BloomFilter(capacity=128, seed=1)
        for item in range(100):
            bf.add(item * 7)
        assert all((item * 7) in bf for item in range(100))

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            BloomFilter(0)
        with pytest.raises(ValueError):
            BloomFilter(10, fp_rate=1.5)

    def test_rejects_negative_items(self):
        from repro.common.errors import ReproError

        with pytest.raises(ReproError):
            BloomFilter(8).add(-1)

    def test_false_positive_rate_near_target(self):
        bf = BloomFilter(capacity=2000, fp_rate=0.01, seed=3)
        for item in range(2000):
            bf.add(item)
        false_hits = sum(1 for probe in range(10_000, 30_000) if probe in bf)
        assert false_hits / 20_000 < 0.05  # generous 5x margin on 1% target

    def test_fullness(self):
        bf = BloomFilter(capacity=4)
        assert not bf.is_full
        for item in range(4):
            bf.add(item)
        assert bf.is_full

    def test_memory_is_bounded(self):
        bf = BloomFilter(capacity=4096, fp_rate=0.01)
        # ~9.6 bits/item at 1% fp -> well under 8 KiB.
        assert bf.memory_bytes() < 8192

    @given(items=st.sets(st.integers(min_value=0, max_value=2**48), max_size=200))
    @settings(max_examples=50)
    def test_no_false_negatives(self, items):
        bf = BloomFilter(capacity=max(1, len(items)), seed=9)
        for item in items:
            bf.add(item)
        assert all(item in bf for item in items)


class TestTimeSegmentedBlooms:
    def make(self, capacity=4, group_size=4):
        clock = SimClock()
        return clock, TimeSegmentedBlooms(
            clock, capacity_per_filter=capacity, group_size=group_size, seed=5
        )

    def test_grouping(self):
        _clock, blooms = self.make(group_size=4)
        assert blooms.group_of(0) == blooms.group_of(3)
        assert blooms.group_of(3) != blooms.group_of(4)

    def test_recorded_pages_are_retained(self):
        _clock, blooms = self.make()
        blooms.record_invalidation(10)
        assert blooms.is_retained(10)
        # Group granularity: neighbours in the same group also hit.
        assert blooms.is_retained(8)

    def test_unrecorded_page_not_retained(self):
        _clock, blooms = self.make()
        assert not blooms.is_retained(100)

    def test_segment_rollover_on_capacity(self):
        clock, blooms = self.make(capacity=2, group_size=1)
        clock.advance(10)
        blooms.record_invalidation(1)
        blooms.record_invalidation(2)
        clock.advance(10)
        blooms.record_invalidation(3)  # rolls into a new segment
        live = blooms.live_segments()
        assert len(live) == 2
        assert live[0].sealed_us is not None
        assert live[1].active

    def test_find_segment_prefers_newest(self):
        clock, blooms = self.make(capacity=1, group_size=1)
        blooms.record_invalidation(7)
        clock.advance(100)
        blooms.record_invalidation(7)  # same group again, new segment
        segment = blooms.find_segment(7)
        assert segment is blooms.live_segments()[-1]

    def test_drop_oldest_shrinks_window(self):
        clock, blooms = self.make(capacity=1, group_size=1)
        blooms.record_invalidation(1)
        clock.advance(1000)
        blooms.record_invalidation(2)
        clock.advance(1000)
        start_before = blooms.window_start_us()
        dropped = blooms.drop_oldest()
        assert dropped is not None
        assert blooms.window_start_us() > start_before

    def test_never_drops_last_segment(self):
        _clock, blooms = self.make()
        assert blooms.drop_oldest() is None

    def test_dropped_pages_become_expired(self):
        clock, blooms = self.make(capacity=1, group_size=1)
        blooms.record_invalidation(1)
        clock.advance(10)
        blooms.record_invalidation(2)
        blooms.drop_oldest()
        assert not blooms.is_retained(1)
        assert blooms.is_retained(2)

    def test_floor_blocks_young_drop(self):
        clock, blooms = self.make(capacity=1, group_size=1)
        blooms.record_invalidation(1)
        clock.advance(10)
        blooms.record_invalidation(2)
        assert not blooms.can_drop_oldest(floor_us=1000)
        clock.advance(2000)
        assert blooms.can_drop_oldest(floor_us=1000)

    def test_retention_us_tracks_oldest_live(self):
        clock, blooms = self.make(capacity=1, group_size=1)
        blooms.record_invalidation(1)
        clock.advance(500)
        assert blooms.retention_us() == 500
