"""Power-loss recovery: RAM tables rebuilt from flash OOB metadata."""

import random

import pytest

from repro.common.units import SECOND_US
from repro.timessd.config import ContentMode
from repro.timessd.recovery import rebuild_from_flash, simulate_power_loss
from repro.timessd.verify import DeviceAuditor

from tests.conftest import make_timessd, small_geometry


def churned_device(seed=5, real=False):
    ssd = make_timessd(
        geometry=small_geometry(blocks_per_plane=48),
        content_mode=ContentMode.REAL if real else ContentMode.MODELED,
        retention_floor_us=3600 * SECOND_US,
    )
    rng = random.Random(seed)
    working = ssd.logical_pages // 3
    state = {}
    history = {}
    for _ in range(working * 3):
        lpa = rng.randrange(working)
        ts = ssd.clock.now_us
        data = (b"%d@%d" % (lpa, ts)).ljust(512, b"\x04") if real else None
        ssd.write(lpa, data)
        state[lpa] = data
        history.setdefault(lpa, []).append(ts)
        ssd.clock.advance(1500)
    return ssd, state, history


def test_current_data_survives_power_loss():
    ssd, state, _history = churned_device(real=True)
    simulate_power_loss(ssd)
    stats = rebuild_from_flash(ssd)
    assert stats["mapped_lpas"] == len(state)
    for lpa, data in state.items():
        assert ssd.read(lpa)[0] == data


def test_device_writable_after_recovery():
    ssd, _state, _history = churned_device()
    simulate_power_loss(ssd)
    rebuild_from_flash(ssd)
    for lpa in range(50):
        ssd.write(lpa)
        ssd.clock.advance(500)
    assert ssd.block_manager.free_block_count > 0


def test_flash_resident_history_survives():
    """Versions on data pages and in flushed delta pages are still
    queryable after the rebuild (RAM-buffered deltas are the documented
    loss)."""
    ssd, _state, history = churned_device()
    # Capture what was retrievable from flash before the crash.
    flash_versions = {}
    for lpa in list(history)[:40]:
        versions, _ = ssd.version_chain(lpa)
        flash_versions[lpa] = {
            v.timestamp_us for v in versions if v.source != "delta-ram"
        }
    simulate_power_loss(ssd)
    rebuild_from_flash(ssd)
    for lpa, expected in flash_versions.items():
        versions, _ = ssd.version_chain(lpa)
        got = {v.timestamp_us for v in versions}
        missing = expected - got
        assert not missing, "lpa %d lost flash-resident versions %s" % (
            lpa,
            missing,
        )


def test_recovered_device_passes_audit():
    ssd, _state, _history = churned_device()
    simulate_power_loss(ssd)
    rebuild_from_flash(ssd)
    report = DeviceAuditor(ssd).audit(sample_lpa_stride=5)
    assert report.clean, report.violations


def test_recovery_stats_are_coherent():
    ssd, state, _history = churned_device()
    simulate_power_loss(ssd)
    stats = rebuild_from_flash(ssd)
    assert stats["mapped_lpas"] == len(state)
    assert stats["retained_pages"] == ssd.retained_pages
    assert stats["free_blocks"] == ssd.block_manager.free_block_count
    assert stats["free_blocks"] > 0


def test_gc_still_works_after_recovery():
    ssd, _state, _history = churned_device()
    simulate_power_loss(ssd)
    rebuild_from_flash(ssd)
    rng = random.Random(9)
    working = ssd.logical_pages // 3
    before = ssd.gc_runs + ssd.background_gc_runs
    for _ in range(working * 2):
        ssd.write(rng.randrange(working))
        ssd.clock.advance(800)
    assert ssd.gc_runs + ssd.background_gc_runs > before
    report = DeviceAuditor(ssd).audit(sample_lpa_stride=11)
    assert report.clean, report.violations
