import pytest

from repro.ftl.block_manager import BlockKind
from repro.timessd.delta import DeltaManager, DeltaPage, DeltaRecord

from tests.conftest import make_timessd


def make_record(lpa=1, ts=10, size=100, segment=0):
    return DeltaRecord(
        lpa=lpa,
        version_ts=ts,
        ref_ts=ts + 5,
        payload=("tok", lpa, ts),
        size_bytes=size,
        segment_id=segment,
    )


@pytest.fixture
def ssd():
    return make_timessd()


def test_records_buffer_in_ram(ssd):
    mgr = ssd.deltas
    mgr.add_record(make_record(size=50), now_us=0)
    assert mgr.ram_bytes() > 0
    assert mgr.flushed_pages == 0


def test_buffer_overflow_flushes_a_delta_page(ssd):
    mgr = ssd.deltas
    usable = mgr.usable_page_bytes()
    size = usable // 2
    mgr.add_record(make_record(ts=1, size=size), now_us=0)
    mgr.add_record(make_record(ts=2, size=size), now_us=0)  # would overflow
    assert mgr.flushed_pages == 1


def test_flush_assigns_flash_ppa_and_delta_block(ssd):
    mgr = ssd.deltas
    record = make_record(segment=3)
    mgr.add_record(record, now_us=0)
    mgr.flush_segment(3, now_us=0)
    assert record.flash_ppa is not None
    pba = ssd.device.geometry.block_of_page(record.flash_ppa)
    assert ssd.block_manager.kind(pba) is BlockKind.DELTA
    assert pba in mgr.segment_blocks(3)
    page = ssd.device.peek_page(record.flash_ppa)
    assert isinstance(page.data, DeltaPage)
    assert record in page.data.records


def test_segments_use_separate_blocks(ssd):
    mgr = ssd.deltas
    r1, r2 = make_record(segment=1), make_record(segment=2)
    mgr.add_record(r1, 0)
    mgr.add_record(r2, 0)
    mgr.flush_segment(1, 0)
    mgr.flush_segment(2, 0)
    geo = ssd.device.geometry
    assert geo.block_of_page(r1.flash_ppa) != geo.block_of_page(r2.flash_ppa)


def test_flush_empty_segment_is_noop(ssd):
    assert ssd.deltas.flush_segment(9, now_us=5) == 5


def test_drop_segment_erases_blocks_and_kills_records(ssd):
    mgr = ssd.deltas
    flushed = make_record(ts=1, segment=1)
    buffered = make_record(ts=2, segment=1)
    mgr.add_record(flushed, 0)
    mgr.flush_segment(1, 0)
    mgr.add_record(buffered, 0)
    free_before = ssd.block_manager.free_block_count
    erased = mgr.drop_segment(1, now_us=0)
    assert erased == 1
    assert flushed.dropped and buffered.dropped
    assert ssd.block_manager.free_block_count == free_before + 1
    assert mgr.segment_blocks(1) == set()


def test_drop_unknown_segment_is_noop(ssd):
    assert ssd.deltas.drop_segment(1234, now_us=0) == 0


def test_oversized_record_still_stored_one_per_page(ssd):
    mgr = ssd.deltas
    big = make_record(size=10 * mgr.usable_page_bytes())
    mgr.add_record(big, 0)
    mgr.add_record(make_record(ts=2), 0)  # forces flush of the big one
    assert mgr.flushed_pages == 1
