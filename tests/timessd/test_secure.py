"""Encrypted retention (§3.10): history readable only with the key."""

import pytest

from repro.common.errors import QueryError, ReproError
from repro.common.units import SECOND_US
from repro.timessd.config import ContentMode
from repro.timessd.delta import DeltaPage
from repro.timessd.secure import EncryptedPayload, RetentionCipher, RetentionLock

from tests.conftest import make_timessd, small_geometry

KEY = b"correct horse battery staple"


class TestRetentionCipher:
    def test_requires_decent_key(self):
        with pytest.raises(ReproError):
            RetentionCipher(b"short")
        with pytest.raises(ReproError):
            RetentionCipher("not-bytes")

    def test_roundtrip_bytes(self):
        cipher = RetentionCipher(KEY)
        payload = b"sensitive old version" * 10
        sealed = cipher.encrypt_payload(payload, lpa=3, version_ts=1000)
        assert isinstance(sealed, EncryptedPayload)
        assert sealed.ciphertext != payload
        assert cipher.decrypt_payload(sealed) == payload

    def test_roundtrip_structured_payload(self):
        cipher = RetentionCipher(KEY)
        payload = ("xor", b"\x01\x02\x03" * 50)
        sealed = cipher.encrypt_payload(payload, lpa=1, version_ts=5)
        opened = cipher.decrypt_payload(sealed)
        assert opened == payload
        assert sealed.ciphertext[0] == "xor"  # structure visible, bytes not
        assert sealed.ciphertext[1] != payload[1]

    def test_nonce_separates_versions(self):
        cipher = RetentionCipher(KEY)
        a = cipher.encrypt_payload(b"same-bytes", 1, 100).ciphertext
        b = cipher.encrypt_payload(b"same-bytes", 1, 200).ciphertext
        assert a != b

    def test_different_keys_differ(self):
        a = RetentionCipher(KEY).encrypt_payload(b"data-here", 1, 1).ciphertext
        b = RetentionCipher(b"another secret key!").encrypt_payload(
            b"data-here", 1, 1
        ).ciphertext
        assert a != b

    def test_length_preserving(self):
        cipher = RetentionCipher(KEY)
        for n in (0, 1, 7, 8, 9, 4096):
            sealed = cipher.encrypt_payload(bytes(n), 0, 0)
            assert len(sealed.ciphertext) == n


class TestRetentionLock:
    def test_wrong_key_rejected(self):
        lock = RetentionLock(RetentionCipher(KEY))
        with pytest.raises(QueryError):
            lock.unlock(b"wrong key entirely!!")
        assert not lock.unlocked

    def test_unlock_then_lock(self):
        lock = RetentionLock(RetentionCipher(KEY))
        lock.unlock(KEY)
        assert lock.unlocked
        lock.lock()
        assert not lock.unlocked

    def test_open_payload_enforces_lock(self):
        cipher = RetentionCipher(KEY)
        lock = RetentionLock(cipher)
        sealed = cipher.encrypt_payload(b"secret", 1, 1)
        with pytest.raises(QueryError):
            lock.open_payload(sealed)
        lock.unlock(KEY)
        assert lock.open_payload(sealed) == b"secret"

    def test_plaintext_passes_through(self):
        lock = RetentionLock(RetentionCipher(KEY))
        assert lock.open_payload(b"not-encrypted") == b"not-encrypted"


class TestEncryptedDevice:
    def make_device(self):
        return make_timessd(
            geometry=small_geometry(blocks_per_plane=32),
            content_mode=ContentMode.REAL,
            retention_floor_us=3600 * SECOND_US,
            retention_key=KEY,
        )

    def churn_history(self, ssd, lpa=4, versions=None):
        geo = ssd.device.geometry
        versions = versions or geo.channels * geo.pages_per_block + 4
        contents = []
        for i in range(versions):
            payload = (b"v%05d" % i).ljust(geo.page_size, b"\x03")
            contents.append((ssd.clock.now_us, payload))
            ssd.write(lpa, payload)
            ssd.clock.advance(1000)
        # Force retained versions into (encrypted) delta records.
        from repro.ftl.block_manager import BlockKind

        victim = ssd.block_manager.select_greedy_victim(BlockKind.DATA)
        assert victim is not None
        ssd.collector.reclaim_block(victim, ssd.clock.now_us)
        return contents

    def test_current_data_is_never_gated(self):
        ssd = self.make_device()
        contents = self.churn_history(ssd)
        assert ssd.read(4)[0] == contents[-1][1]

    def test_locked_device_refuses_history(self):
        ssd = self.make_device()
        self.churn_history(ssd)
        with pytest.raises(QueryError):
            ssd.version_chain(4)

    def test_unlock_restores_full_history(self):
        ssd = self.make_device()
        contents = self.churn_history(ssd)
        ssd.unlock_retention(KEY)
        versions, _ = ssd.version_chain(4)
        by_ts = {ts: payload for ts, payload in contents}
        for v in versions:
            assert v.data == by_ts[v.timestamp_us]

    def test_wrong_key_fails_loudly(self):
        ssd = self.make_device()
        with pytest.raises(QueryError):
            ssd.unlock_retention(b"definitely not the key")

    def test_flash_holds_only_ciphertext(self):
        ssd = self.make_device()
        contents = self.churn_history(ssd)
        plaintexts = {payload for _ts, payload in contents}
        found_encrypted = 0
        for pba in range(ssd.device.geometry.total_blocks):
            for ppa in ssd.device.geometry.pages_of_block(pba):
                page = ssd.device.peek_page(ppa)
                if isinstance(page.data, DeltaPage):
                    for record in page.data.records:
                        assert isinstance(record.payload, EncryptedPayload)
                        assert record.payload.ciphertext not in plaintexts
                        found_encrypted += 1
        # RAM-buffered records are encrypted too.
        ram_records = [
            r
            for state in ssd.deltas._segments.values()
            for r in state.buffer
        ]
        for record in ram_records:
            assert isinstance(record.payload, EncryptedPayload)
        assert found_encrypted + len(ram_records) > 0

    def test_unkeyed_device_needs_no_unlock(self):
        ssd = make_timessd(retention_floor_us=3600 * SECOND_US)
        with pytest.raises(QueryError):
            ssd.unlock_retention(KEY)
        ssd.write(1)
        ssd.write(1)
        versions, _ = ssd.version_chain(1)  # no lock in the way
        assert len(versions) == 2
