import pytest

from repro.common.clock import SimClock
from repro.flash.timing import FlashTiming
from repro.timessd.bloom import TimeSegmentedBlooms
from repro.timessd.retention import GCOverheadEstimator, RetentionManager


class TestGCOverheadEstimator:
    def make(self, threshold=0.2, period=10):
        return GCOverheadEstimator(FlashTiming(), threshold, period)

    def test_quiet_period_does_not_trigger(self):
        est = self.make()
        for _ in range(10):
            assert not est.note_user_write()
        assert est.periods_evaluated == 1
        assert est.last_overhead_per_write_us == 0

    def test_heavy_gc_triggers(self):
        est = self.make()
        est.note_gc_ops(reads=100, writes=100, erases=10)
        triggered = [est.note_user_write() for _ in range(10)]
        assert triggered[-1] is True
        assert est.periods_exceeded == 1

    def test_equation_1_arithmetic(self):
        timing = FlashTiming()
        est = GCOverheadEstimator(timing, threshold=0.2, period_writes=4)
        est.note_gc_ops(reads=2, writes=1, erases=1, deltas=3)
        for _ in range(4):
            est.note_user_write()
        expected = (
            2 * timing.read_us
            + 1 * timing.program_us
            + 1 * timing.erase_us
            + 3 * timing.delta_compress_us
        ) / 4
        assert est.last_overhead_per_write_us == pytest.approx(expected)

    def test_counters_reset_each_period(self):
        est = self.make(period=2)
        est.note_gc_ops(erases=100)
        est.note_user_write()
        assert est.note_user_write()  # period 1: heavy
        est.note_user_write()
        assert not est.note_user_write()  # period 2: quiet again

    def test_threshold_scales_with_write_cost(self):
        timing = FlashTiming()
        est = GCOverheadEstimator(timing, threshold=0.2, period_writes=1)
        # Exactly at threshold: not exceeded (strict inequality).
        est.note_gc_ops(reads=0, writes=0, erases=0, deltas=0)
        assert not est.note_user_write()

    def test_rejects_bad_period(self):
        with pytest.raises(ValueError):
            GCOverheadEstimator(FlashTiming(), period_writes=0)


class TestRetentionManager:
    def make(self, floor_us=1000):
        clock = SimClock()
        blooms = TimeSegmentedBlooms(clock, capacity_per_filter=1, group_size=1)
        return clock, blooms, RetentionManager(blooms, floor_us)

    def test_shrink_respects_floor(self):
        clock, blooms, mgr = self.make(floor_us=1000)
        blooms.record_invalidation(1)
        clock.advance(10)
        blooms.record_invalidation(2)
        assert mgr.shrink() is None
        assert mgr.shrink_denied == 1

    def test_shrink_after_floor_elapsed(self):
        clock, blooms, mgr = self.make(floor_us=1000)
        blooms.record_invalidation(1)
        clock.advance(10)
        blooms.record_invalidation(2)
        clock.advance(5000)
        segment = mgr.shrink()
        assert segment is not None
        assert mgr.shrinks == 1

    def test_retention_metric_delegates(self):
        clock, blooms, mgr = self.make()
        clock.advance(777)
        assert mgr.retention_us() == 777
