import pytest

from repro.flash.page import NULL_PPA
from repro.timessd.delta import DeltaRecord
from repro.timessd.index import TimeTravelIndex

from tests.conftest import make_timessd


@pytest.fixture
def ssd():
    return make_timessd()


def write_versions(ssd, lpa, n, gap_us=100):
    """Write n versions; returns the PPAs each version landed on."""
    ppas = []
    for _ in range(n):
        ssd.write(lpa)
        ppas.append(ssd.mapping.lookup(lpa))
        ssd.clock.advance(gap_us)
    return ppas


class TestPRT:
    def test_mark_and_check(self, ssd):
        index = ssd.index
        assert not index.is_reclaimable(5)
        assert index.mark_reclaimable(5)
        assert index.is_reclaimable(5)
        assert not index.mark_reclaimable(5)  # second mark is a no-op

    def test_clear_block_forgets(self, ssd):
        index = ssd.index
        geo = ssd.device.geometry
        ppa = geo.first_page_of_block(3)
        index.mark_reclaimable(ppa)
        index.clear_block(3)
        assert not index.is_reclaimable(ppa)
        assert index.reclaimable_count() == 0


class TestDataChain:
    def test_walk_links_all_versions(self, ssd):
        ppas = write_versions(ssd, 7, 4)
        walk = ssd.index.walk_data_chain(7, ppas[-1], ssd.clock.now_us)
        assert [e[0] for e in walk.entries] == list(reversed(ppas))
        stamps = [e[1].timestamp_us for e in walk.entries]
        assert stamps == sorted(stamps, reverse=True)

    def test_walk_null_head_is_empty(self, ssd):
        walk = ssd.index.walk_data_chain(7, NULL_PPA, 0)
        assert walk.entries == []

    def test_walk_charges_read_time(self, ssd):
        ppas = write_versions(ssd, 7, 3)
        t0 = ssd.clock.now_us
        walk = ssd.index.walk_data_chain(7, ppas[-1], t0)
        assert walk.complete_us >= t0 + 3 * ssd.device.timing.read_us

    def test_walk_stops_at_recycled_page(self, ssd):
        # Write versions spanning several blocks, then erase the block
        # holding the oldest ones: the walk must stop at the break.
        geo = ssd.device.geometry
        ppas = write_versions(ssd, 7, geo.pages_per_block + 4)
        old_block = geo.block_of_page(ppas[0])
        assert geo.block_of_page(ppas[-1]) != old_block
        for ppa in geo.pages_of_block(old_block):
            ssd.block_manager.invalidate_page(ppa)
        ssd.device.erase_block(old_block)
        walk = ssd.index.walk_data_chain(7, ppas[-1], ssd.clock.now_us)
        # Reachable prefix: newest versions up to (excluding) the first
        # hop that lands in the erased block.
        expected = []
        for ppa in reversed(ppas):
            if geo.block_of_page(ppa) == old_block:
                break
            expected.append(ppa)
        assert [e[0] for e in walk.entries] == expected

    def test_walk_with_erased_head_is_empty(self, ssd):
        ppas = write_versions(ssd, 7, 2)
        geo = ssd.device.geometry
        pba = geo.block_of_page(ppas[-1])
        for ppa in geo.pages_of_block(pba):
            ssd.block_manager.invalidate_page(ppa)
        ssd.device.erase_block(pba)
        walk = ssd.index.walk_data_chain(7, ppas[-1], ssd.clock.now_us)
        assert walk.entries == []

    def test_walk_rejects_mismatched_head(self, ssd):
        write_versions(ssd, 7, 1)
        other_ppa = None
        ssd.write(8)
        other_ppa = ssd.mapping.lookup(8)
        walk = ssd.index.walk_data_chain(7, other_ppa, ssd.clock.now_us)
        assert walk.entries == []


class TestDeltaChain:
    def make_record(self, lpa, ts, back=None, flash_ppa=None, dropped=False):
        record = DeltaRecord(
            lpa=lpa,
            version_ts=ts,
            ref_ts=ts + 1,
            payload=("tok", ts),
            size_bytes=10,
            segment_id=0,
            back=back,
        )
        record.flash_ppa = flash_ppa
        record.dropped = dropped
        return record

    def test_walk_follows_back_links(self, ssd):
        oldest = self.make_record(1, 10)
        newest = self.make_record(1, 20, back=oldest)
        ssd.index.set_delta_head(1, newest)
        walk = ssd.index.walk_delta_chain(1, 0)
        assert [r.version_ts for r in walk.entries] == [20, 10]

    def test_walk_stops_at_dropped_record(self, ssd):
        dead = self.make_record(1, 10, dropped=True)
        live = self.make_record(1, 20, back=dead)
        ssd.index.set_delta_head(1, live)
        walk = ssd.index.walk_delta_chain(1, 0)
        assert [r.version_ts for r in walk.entries] == [20]

    def test_ram_records_cost_nothing(self, ssd):
        ssd.index.set_delta_head(1, self.make_record(1, 10))
        walk = ssd.index.walk_delta_chain(1, 1000)
        assert walk.complete_us == 1000

    def test_flushed_records_cost_one_read_per_page(self, ssd):
        # Two records on the same delta page: one read total.
        ssd.write(0)  # occupy ppa so reads are legal
        ppa = ssd.mapping.lookup(0)
        oldest = self.make_record(1, 10, flash_ppa=ppa)
        newest = self.make_record(1, 20, back=oldest, flash_ppa=ppa)
        ssd.index.set_delta_head(1, newest)
        t0 = ssd.clock.now_us
        walk = ssd.index.walk_delta_chain(1, t0)
        assert walk.complete_us == t0 + ssd.device.timing.read_us

    def test_prune_dropped_head(self, ssd):
        dead_new = self.make_record(1, 30, dropped=True)
        ssd.index.set_delta_head(1, dead_new)
        assert ssd.index.prune_dropped_head(1) is None
        assert ssd.index.delta_head(1) is None
