"""The device auditor: clean after stress, loud after corruption."""

import random

import pytest

from repro.common.units import SECOND_US
from repro.timessd.config import ContentMode
from repro.timessd.verify import AuditReport, DeviceAuditor

from tests.conftest import make_timessd, small_geometry


def stressed_ssd(seed=14):
    ssd = make_timessd(
        geometry=small_geometry(blocks_per_plane=48),
        retention_floor_us=2 * SECOND_US,
        bloom_segment_max_age_us=SECOND_US,
    )
    rng = random.Random(seed)
    working = ssd.logical_pages // 2
    for lpa in range(working):
        ssd.write(lpa)
        ssd.clock.advance(300)
    for _ in range(working * 4):
        roll = rng.random()
        lpa = rng.randrange(working)
        if roll < 0.8:
            ssd.write(lpa)
        elif roll < 0.9:
            ssd.trim(lpa)
        else:
            ssd.read(lpa)
        ssd.clock.advance(rng.choice([300, 800, 20_000]))
    return ssd


def test_fresh_device_is_clean():
    report = DeviceAuditor(make_timessd()).audit()
    assert report.clean
    assert report.checks_run == 6


def test_stressed_device_is_clean():
    ssd = stressed_ssd()
    assert ssd.gc_runs + ssd.background_gc_runs > 0  # stress actually stressed
    report = DeviceAuditor(ssd).audit()
    assert report.clean, report.violations


def test_real_content_stress_is_clean():
    ssd = make_timessd(
        geometry=small_geometry(blocks_per_plane=48),
        content_mode=ContentMode.REAL,
        retention_floor_us=3600 * SECOND_US,
    )
    rng = random.Random(3)
    working = ssd.logical_pages // 3
    for _ in range(working * 4):
        lpa = rng.randrange(working)
        ssd.write(lpa, bytes([rng.randrange(256)]) * ssd.device.geometry.page_size)
        ssd.clock.advance(1500)
    report = DeviceAuditor(ssd).audit(sample_lpa_stride=5)
    assert report.clean, report.violations


class TestAuditorDetectsCorruption:
    def test_detects_pvt_mapping_divergence(self):
        ssd = make_timessd()
        ssd.write(3)
        ppa = ssd.mapping.lookup(3)
        ssd.block_manager.invalidate_page(ppa)  # corrupt: head marked stale
        report = DeviceAuditor(ssd).audit()
        assert not report.clean
        assert any("not valid" in v for v in report.violations)

    def test_detects_orphan_valid_page(self):
        ssd = make_timessd()
        ssd.write(3)
        ssd.clock.advance(10)
        ssd.write(3)
        # Corrupt: re-validate the stale old version.
        old_ppa = ssd.device.peek_page(ssd.mapping.lookup(3)).oob.back_pointer
        ssd.block_manager.mark_valid(old_ppa)
        report = DeviceAuditor(ssd).audit()
        assert any("not any LPA's head" in v for v in report.violations)

    def test_detects_reclaimable_valid_page(self):
        ssd = make_timessd()
        ssd.write(3)
        ssd.index.mark_reclaimable(ssd.mapping.lookup(3))
        report = DeviceAuditor(ssd).audit()
        assert any("marked valid" in v for v in report.violations)

    def test_detects_free_count_drift(self):
        ssd = make_timessd()
        ssd.write(0)
        ssd.block_manager._free_count += 1  # corrupt the counter
        report = DeviceAuditor(ssd).audit()
        assert any("free-block count" in v for v in report.violations)

    def test_detects_negative_census(self):
        ssd = make_timessd()
        ssd.write(0)
        ssd.retained_pages = -1
        report = DeviceAuditor(ssd).audit()
        assert any("negative retained-page" in v for v in report.violations)


def test_report_repr():
    report = AuditReport()
    assert "clean" in repr(report)
    report.problem("x")
    assert "1 violations" in repr(report)
