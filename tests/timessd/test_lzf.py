import os
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import ReproError
from repro.timessd import lzf


def test_empty_input():
    assert lzf.compress(b"") == b""
    assert lzf.decompress(b"") == b""


def test_short_literal_roundtrip():
    data = b"abc"
    assert lzf.decompress(lzf.compress(data)) == data


def test_repetitive_data_compresses_well():
    data = b"abcdefgh" * 512
    compressed = lzf.compress(data)
    assert len(compressed) < len(data) // 4
    assert lzf.decompress(compressed, len(data)) == data


def test_zero_page_compresses_extremely_well():
    data = bytes(4096)
    compressed = lzf.compress(data)
    assert len(compressed) < 64
    assert lzf.decompress(compressed, len(data)) == data


def test_random_data_roundtrips():
    data = os.urandom(4096)
    assert lzf.decompress(lzf.compress(data), len(data)) == data


def test_overlapping_match_roundtrip():
    # RLE-like: matches overlap their own output (distance < length).
    data = b"a" * 1000
    assert lzf.decompress(lzf.compress(data), len(data)) == data


def test_long_matches_use_extended_length():
    data = b"x" * 300 + b"y" + b"x" * 300
    assert lzf.decompress(lzf.compress(data), len(data)) == data


def test_length_mismatch_detected():
    blob = lzf.compress(b"hello world")
    with pytest.raises(ReproError):
        lzf.decompress(blob, expected_length=5)


def test_corrupt_stream_rejected():
    with pytest.raises(ReproError):
        lzf.decompress(b"\x1f")  # 32-byte literal run with no payload


def test_corrupt_backreference_rejected():
    # Back-reference before the start of output.
    with pytest.raises(ReproError):
        lzf.decompress(bytes([0x20 | 0x1F, 0xFF]))


@given(data=st.binary(max_size=5000))
@settings(max_examples=200)
def test_roundtrip_property(data):
    assert lzf.decompress(lzf.compress(data), len(data)) == data


@given(
    seed=st.integers(0, 1000),
    block=st.integers(1, 64),
    repeats=st.integers(1, 100),
)
@settings(max_examples=50)
def test_structured_roundtrip_property(seed, block, repeats):
    rng = random.Random(seed)
    chunk = bytes(rng.randrange(4) for _ in range(block))
    data = chunk * repeats
    assert lzf.decompress(lzf.compress(data), len(data)) == data
