"""Configuration validation across the device configs."""

import pytest

from repro.flash.timing import FlashTiming
from repro.ftl.ssd import SSDConfig
from repro.timessd.config import ContentMode, TimeSSDConfig

from tests.conftest import small_geometry


class TestSSDConfig:
    def test_defaults_derive_watermark(self):
        config = SSDConfig(geometry=small_geometry())
        assert config.gc_low_watermark >= small_geometry().channels + 2

    def test_explicit_watermark_kept(self):
        config = SSDConfig(geometry=small_geometry(), gc_low_watermark=9)
        assert config.gc_low_watermark == 9

    @pytest.mark.parametrize("ratio", [0.0, 1.0, -0.2])
    def test_bad_op_ratio(self, ratio):
        with pytest.raises(ValueError):
            SSDConfig(geometry=small_geometry(), op_ratio=ratio)

    def test_logical_pages_below_raw(self):
        config = SSDConfig(geometry=small_geometry(), op_ratio=0.15)
        geo = small_geometry()
        assert config.logical_pages == int(geo.total_pages / 1.15)


class TestTimeSSDConfig:
    def test_paper_defaults(self):
        config = TimeSSDConfig()
        from repro.common.units import DAY_US

        assert config.retention_floor_us == 3 * DAY_US
        assert config.bloom_group_size == 16
        assert config.gc_overhead_threshold == 0.20
        assert config.idle_alpha == 0.5
        assert config.idle_threshold_us == 10_000
        assert config.content_mode is ContentMode.MODELED

    def test_timessd_watermark_raised_above_channels(self):
        config = TimeSSDConfig(geometry=small_geometry())
        assert config.gc_low_watermark >= small_geometry().channels + 4

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"retention_floor_us": -1},
            {"gc_overhead_threshold": 0},
            {"idle_alpha": 0},
            {"idle_alpha": 1.5},
            {"modeled_ratio_mean": 0.0},
            {"modeled_ratio_mean": 1.0},
        ],
    )
    def test_bad_values_rejected(self, kwargs):
        with pytest.raises(ValueError):
            TimeSSDConfig(geometry=small_geometry(), **kwargs)


class TestFlashTiming:
    def test_costs_ordering_default(self):
        timing = FlashTiming()
        assert timing.read_us < timing.program_us < timing.erase_us

    def test_negative_bus_rejected(self):
        with pytest.raises(ValueError):
            FlashTiming(bus_transfer_us=-1)
