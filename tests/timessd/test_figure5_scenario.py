"""The paper's Figure 5, as an executable scenario.

Four versions of one LPA L — Z(T0), Y(T1), X(T2), W(T3 = current) — and
GC reclaims the block holding Y.  The paper's figure shows the result:

* data-page chain: W -> X (unbroken prefix of newest versions);
* delta-page chain: delta(L, T1, ref T3) -> delta(L, T0, ref T3);
* the IMT points at the T1 delta;
* every version is still retrievable, in order.
"""

import pytest

from repro.common.units import SECOND_US
from repro.timessd.config import ContentMode

from tests.conftest import make_timessd, small_geometry


@pytest.fixture
def scenario():
    ssd = make_timessd(
        geometry=small_geometry(blocks_per_plane=32),
        content_mode=ContentMode.REAL,
        retention_floor_us=3600 * SECOND_US,
    )
    L = 5
    size = ssd.device.geometry.page_size
    stamps = {}
    ppas = {}
    for name in ("Z", "Y", "X", "W"):
        stamps[name] = ssd.clock.now_us
        ssd.write(L, ("data-%s" % name).encode().ljust(size, b"\0"))
        ppas[name] = ssd.mapping.lookup(L)
        ssd.clock.advance(SECOND_US)
    return ssd, L, stamps, ppas


def test_chain_before_gc_is_pure_data_pages(scenario):
    ssd, L, stamps, _ppas = scenario
    versions, _ = ssd.version_chain(L)
    assert [v.timestamp_us for v in versions] == [
        stamps["W"], stamps["X"], stamps["Y"], stamps["Z"],
    ]
    assert versions[0].source == "current"
    assert all(v.source == "data-page" for v in versions[1:])


def test_figure5_after_reclaiming_y(scenario):
    ssd, L, stamps, ppas = scenario
    geo = ssd.device.geometry

    # Reclaim the block that holds Y (the paper's GC victim).
    victim = geo.block_of_page(ppas["Y"])
    ssd.collector.reclaim_block(victim, ssd.clock.now_us)

    versions, _ = ssd.version_chain(L)
    by_ts = {v.timestamp_us: v for v in versions}

    # All four versions survive, still newest-first.
    assert [v.timestamp_us for v in versions] == [
        stamps["W"], stamps["X"], stamps["Y"], stamps["Z"],
    ]

    # Fig 5b: W (and X, if its block survived) remain data pages...
    assert by_ts[stamps["W"]].source == "current"
    # ...Fig 5c: Y and Z moved to the delta chain.
    assert by_ts[stamps["Y"]].source.startswith("delta")
    assert by_ts[stamps["Z"]].source.startswith("delta")

    # The IMT head is Y's delta; its back link is Z's; both reference
    # the current version W (T3) for decompression.
    head = ssd.index.delta_head(L)
    assert head.version_ts == stamps["Y"]
    assert head.back.version_ts == stamps["Z"]
    assert head.back.back is None
    assert head.ref_ts == stamps["W"]
    assert head.back.ref_ts == stamps["W"]

    # Content is byte-exact after decompression.
    assert by_ts[stamps["Y"]].data.startswith(b"data-Y")
    assert by_ts[stamps["Z"]].data.startswith(b"data-Z")


def test_invariant_deltas_older_than_data_pages(scenario):
    ssd, L, stamps, ppas = scenario
    geo = ssd.device.geometry
    ssd.collector.reclaim_block(geo.block_of_page(ppas["Y"]), ssd.clock.now_us)
    versions, _ = ssd.version_chain(L)
    data_ts = [v.timestamp_us for v in versions if not v.source.startswith("delta")]
    delta_ts = [v.timestamp_us for v in versions if v.source.startswith("delta")]
    assert max(delta_ts) < min(data_ts)


def test_second_gc_extends_the_delta_chain(scenario):
    """Later, X's block is reclaimed too: X joins the delta chain at its
    head, keeping newest-first order (the §3.7 time-order argument)."""
    ssd, L, stamps, ppas = scenario
    geo = ssd.device.geometry
    ssd.collector.reclaim_block(geo.block_of_page(ppas["Y"]), ssd.clock.now_us)
    if geo.block_of_page(ppas["X"]) != geo.block_of_page(ppas["W"]):
        ssd.collector.reclaim_block(
            geo.block_of_page(ppas["X"]), ssd.clock.now_us
        )
        head = ssd.index.delta_head(L)
        assert head.version_ts == stamps["X"]
        assert head.back.version_ts == stamps["Y"]
    versions, _ = ssd.version_chain(L)
    stamps_seen = [v.timestamp_us for v in versions]
    assert stamps_seen == sorted(stamps_seen, reverse=True)
    assert len(stamps_seen) == 4
