import os
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import ReproError
from repro.timessd.delta import ModeledDeltaCodec, RealDeltaCodec

PAGE = 256


class TestRealDeltaCodec:
    def setup_method(self):
        self.codec = RealDeltaCodec(PAGE)

    def test_similar_pages_give_small_delta(self):
        ref = bytearray(os.urandom(PAGE))
        old = bytearray(ref)
        old[10] ^= 0xFF  # one changed byte
        payload, size = self.codec.compress(bytes(old), bytes(ref))
        assert size < PAGE // 4
        assert self.codec.decompress(payload, bytes(ref)) == bytes(old)

    def test_unrelated_pages_fall_back_to_raw(self):
        old, ref = os.urandom(PAGE), os.urandom(PAGE)
        payload, size = self.codec.compress(old, ref)
        assert size == PAGE
        assert payload[0] == "raw"
        assert self.codec.decompress(payload, ref) == old

    def test_no_reference_uses_plain_lzf(self):
        old = bytes(PAGE)  # compressible
        payload, size = self.codec.compress(old, None)
        assert payload[0] == "lzf"
        assert size < PAGE
        assert self.codec.decompress(payload, None) == old

    def test_wrong_size_rejected(self):
        with pytest.raises(ReproError):
            self.codec.compress(b"short", bytes(PAGE))

    def test_non_bytes_rejected(self):
        with pytest.raises(ReproError):
            self.codec.compress(object(), bytes(PAGE))

    def test_xor_delta_requires_reference_on_decompress(self):
        ref = os.urandom(PAGE)
        old = bytes(b ^ 1 for b in ref)
        payload, _ = self.codec.compress(old, ref)
        if payload[0] == "xor":
            with pytest.raises(ReproError):
                self.codec.decompress(payload, None)

    @given(
        seed=st.integers(0, 500),
        nchanges=st.integers(0, PAGE),
    )
    @settings(max_examples=60)
    def test_roundtrip_property(self, seed, nchanges):
        rng = random.Random(seed)
        ref = bytearray(rng.randrange(256) for _ in range(PAGE))
        old = bytearray(ref)
        for _ in range(nchanges):
            old[rng.randrange(PAGE)] = rng.randrange(256)
        payload, size = self.codec.compress(bytes(old), bytes(ref))
        assert 1 <= size <= PAGE
        assert self.codec.decompress(payload, bytes(ref)) == bytes(old)


class TestModeledDeltaCodec:
    def test_requires_rng(self):
        with pytest.raises(ReproError):
            ModeledDeltaCodec(PAGE)

    def test_size_follows_clipped_gaussian(self):
        codec = ModeledDeltaCodec(PAGE, 0.2, 0.05, rng=random.Random(1))
        sizes = [codec.compress(None, None)[1] for _ in range(2000)]
        mean_ratio = sum(sizes) / len(sizes) / PAGE
        assert 0.15 < mean_ratio < 0.25
        assert all(1 <= s <= int(PAGE * 0.95) for s in sizes)

    def test_payload_identity_roundtrip(self):
        codec = ModeledDeltaCodec(PAGE, 0.2, 0.05, rng=random.Random(1))
        token = ("version", 42)
        payload, _ = codec.compress(token, None)
        assert codec.decompress(payload, None) == token


class TestCompressionMemo:
    """The memoized cost model returns cached results verbatim."""

    def test_repeat_pairs_hit_the_memo(self):
        codec = RealDeltaCodec(PAGE)
        old = bytes(range(256))[:PAGE].ljust(PAGE, b"\x01")
        ref = bytes(PAGE)
        first = codec.compress(old, ref)
        again = codec.compress(old, ref)
        assert again == first
        assert codec.memo_hits == 1
        assert codec.memo_misses == 1
        # A different pair is a miss, not a stale hit.
        other = codec.compress(old, old)
        assert other != first
        assert codec.memo_misses == 2

    def test_no_reference_is_memoized_separately(self):
        codec = RealDeltaCodec(PAGE)
        old = b"\x07" * PAGE
        a = codec.compress(old, None)
        b = codec.compress(old, None)
        assert a == b
        assert codec.memo_hits == 1
        assert a[0][0] == "lzf"

    def test_lru_eviction_is_bounded(self):
        codec = RealDeltaCodec(PAGE)
        codec.MEMO_ENTRIES = 4
        for i in range(10):
            codec.compress(bytes([i]) * PAGE, None)
        assert len(codec._memo) <= 4
        # The newest entry survives, the oldest was evicted.
        codec.compress(bytes([9]) * PAGE, None)
        assert codec.memo_hits == 1
        codec.compress(bytes([0]) * PAGE, None)
        assert codec.memo_misses == 11

    def test_memoized_results_match_fresh_codec(self):
        rng = random.Random(5)
        ref = bytes(rng.randrange(256) for _ in range(PAGE))
        old = bytearray(ref)
        old[10] ^= 0xFF
        old = bytes(old)
        warm = RealDeltaCodec(PAGE)
        warm.compress(old, ref)
        cached = warm.compress(old, ref)
        fresh = RealDeltaCodec(PAGE).compress(old, ref)
        assert cached == fresh
