"""Firmware fault handling: retry/remap, retirement, degraded mode, NVMe."""

import pytest

from repro.common.errors import DegradedModeError, ProgramFailureError
from repro.faults.hooks import FaultHooks
from repro.faults.plan import FaultPlan
from repro.ftl.block_manager import BlockKind
from repro.nvme.commands import NVMeCommand, Opcode, StatusCode
from repro.nvme.controller import NVMeController

from tests.conftest import make_regular_ssd

PAGE = b"payload".ljust(512, b"\0")


def make_faulty_ssd(**overrides):
    plan = FaultPlan()
    ssd = make_regular_ssd(faults=FaultHooks(plan), **overrides)
    return ssd, plan


class TestProgramRetry:
    def test_transient_failure_is_remapped_and_absorbed(self):
        ssd, plan = make_faulty_ssd()
        plan.add_program_failure(every=1, max_fires=1)
        ssd.write(0, PAGE)
        assert ssd.program_failures == 1
        assert ssd.read(0)[0] == PAGE
        assert ssd.degraded_reason is None

    def test_retry_budget_exhaustion_escapes_and_degrades(self):
        ssd, plan = make_faulty_ssd()
        plan.add_program_failure(every=1, max_fires=None)
        with pytest.raises(ProgramFailureError):
            ssd.write(0, PAGE)
        assert ssd.degraded_reason is not None
        with pytest.raises(DegradedModeError):
            ssd.write(1, PAGE)
        with pytest.raises(DegradedModeError):
            ssd.trim(0)
        # Reads keep working in degraded mode; the failed write was
        # never acknowledged, so LPA 0 correctly reads as unmapped.
        assert ssd.read(0)[0] is None

    def test_clear_degraded_restores_service(self):
        ssd, plan = make_faulty_ssd()
        spec = plan.add_program_failure(every=1, max_fires=None)
        with pytest.raises(ProgramFailureError):
            ssd.write(0, PAGE)
        spec.max_fires = spec.fires  # the media condition clears
        ssd.clear_degraded()
        ssd.write(0, PAGE)
        assert ssd.read(0)[0] == PAGE
        assert ssd.degraded_reason is None


class TestBadBlockRetirement:
    def test_permanent_failure_condemns_then_retirement_on_release(self):
        ssd, plan = make_faulty_ssd()
        plan.add_program_failure(permanent=True, every=1, max_fires=1)
        ssd.write(0, PAGE)  # remapped onto a fresh block, still acked
        assert ssd.program_failures == 1
        assert ssd.read(0)[0] == PAGE
        bad_pba = ssd.device.geometry.block_of_page(plan.fired[0].address)
        assert ssd.device.blocks[bad_pba].failed
        # Condemned: no longer an append point, but GC prey despite
        # being partial.
        assert bad_pba not in ssd.block_manager.active_blocks()
        assert bad_pba in set(ssd.block_manager.sealed_blocks())
        # Reclaiming it retires it instead of refreshing the free pool.
        ssd._erase_and_release(bad_pba, ssd.clock.now_us)
        assert ssd.erase_failures == 1
        assert ssd.block_manager.retired_blocks == 1
        assert ssd.block_manager.kind(bad_pba) is BlockKind.RETIRED

    def test_erase_failure_during_gc_retires_the_victim(self):
        ssd, plan = make_faulty_ssd()
        plan.add_erase_failure(every=1, max_fires=1)
        working_set = ssd.logical_pages // 4
        writes = 0
        while ssd.gc_runs == 0:
            ssd.write(writes % working_set, PAGE)
            writes += 1
            assert writes < 20_000, "GC never triggered"
        assert ssd.erase_failures == 1
        assert ssd.block_manager.retired_blocks == 1
        # One retired block leaves ample headroom: still serving writes.
        ssd.write(0, PAGE)
        assert ssd.read(0)[0] == PAGE

    def test_pool_shrinkage_enters_read_only_degraded_mode(self):
        ssd, _plan = make_faulty_ssd()
        ssd.write(0, PAGE)
        bm = ssd.block_manager
        geo = ssd.device.geometry
        needed = -(-ssd.logical_pages // geo.pages_per_block)
        needed += ssd.config.gc_low_watermark
        to_retire = geo.total_blocks - needed + 1
        free = [
            pba
            for pba in range(geo.total_blocks)
            if bm.kind(pba) is BlockKind.FREE
        ]
        assert to_retire <= len(free)
        for pba in free[:to_retire]:
            ssd.device.blocks[pba].failed = True
            bm.retire_failed_block(pba)
        with pytest.raises(DegradedModeError):
            ssd.write(1, PAGE)
        # Acked data stays readable; the condition survives a clear
        # because the pool is still too small (media truth).
        assert ssd.read(0)[0] == PAGE
        ssd.clear_degraded()
        with pytest.raises(DegradedModeError):
            ssd.write(1, PAGE)


class TestNVMeStatusMapping:
    def _controller(self):
        plan = FaultPlan()
        ssd = make_regular_ssd(faults=FaultHooks(plan))
        return NVMeController(ssd), ssd, plan

    def test_write_fault_maps_to_media_write_fault(self):
        ctrl, _ssd, plan = self._controller()
        plan.add_program_failure(every=1, max_fires=None)
        completion = ctrl.submit(NVMeCommand(Opcode.WRITE, slba=0))
        assert completion.status is StatusCode.MEDIA_WRITE_FAULT

    def test_degraded_mode_maps_to_read_only_status(self):
        ctrl, ssd, _plan = self._controller()
        assert ctrl.submit(NVMeCommand(Opcode.WRITE, slba=0)).ok
        ssd._enter_degraded("injected by test")
        write = ctrl.submit(NVMeCommand(Opcode.WRITE, slba=1))
        assert write.status is StatusCode.DEGRADED_READ_ONLY
        trim = ctrl.submit(NVMeCommand(Opcode.DSM, slba=0))
        assert trim.status is StatusCode.DEGRADED_READ_ONLY
        assert ctrl.submit(NVMeCommand(Opcode.READ, slba=0)).ok

    def test_uncorrectable_read_maps_to_media_status(self):
        ctrl, _ssd, plan = self._controller()
        assert ctrl.submit(NVMeCommand(Opcode.WRITE, slba=0)).ok
        plan.add_read_error(every=1, max_fires=1)
        completion = ctrl.submit(NVMeCommand(Opcode.READ, slba=0))
        assert completion.status is StatusCode.MEDIA_UNRECOVERED_READ
        # The spec was one-shot; the data itself was never lost.
        assert ctrl.submit(NVMeCommand(Opcode.READ, slba=0)).ok
