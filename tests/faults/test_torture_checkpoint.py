"""Crash-point torture with recovery checkpoints enabled (PR 8).

With ``checkpoint_interval_blocks`` set, the enumerated crash points
also land inside checkpoint part/root programs and the superseded-block
erases.  The contract under test: a power cut anywhere mid-checkpoint
leaves a consistent image in force (possibly an older one, possibly
none), and checkpointed recovery remains exactly equivalent to the
full OOB sweep — acked writes survive, unacked writes never become
visible as acked.
"""

from repro.faults.torture import TortureConfig, run_torture
from repro.ftl.checkpoint import find_translation_blocks
from repro.timessd.recovery import rebuild_from_flash, simulate_power_loss

from repro.faults.torture import _clean_run, build_workload


def checkpoint_config(**overrides):
    params = dict(
        ops=120,
        crash_every=17,
        checkpoint_interval_blocks=2,
        gap_us=700,
    )
    params.update(overrides)
    return TortureConfig(**params)


def test_checkpoints_fire_during_the_torture_workload():
    """The sweep only means something if checkpoints really ran."""
    config = checkpoint_config()
    _plan, ssd = _clean_run(config, build_workload(config))
    counters = ssd.obs.metrics.snapshot()["counters"]
    assert counters["recovery.checkpoint.written"] > 0
    assert find_translation_blocks(ssd.device)


def test_sweep_recovers_at_every_crash_point():
    report = run_torture(checkpoint_config())
    assert report.ok, "\n".join(report.summary_lines())


def test_recovery_after_cut_uses_surviving_checkpoint():
    """A post-crash rebuild can still lean on an earlier image."""
    config = checkpoint_config()
    _plan, ssd = _clean_run(config, build_workload(config))
    simulate_power_loss(ssd)
    stats = rebuild_from_flash(ssd)
    assert stats["checkpoint_seq"] is not None
    assert stats["summarized_blocks"] >= 0
    # The recovered writer supersedes rather than collides.
    assert ssd.checkpointer.seq == stats["checkpoint_seq"]
