"""The crash-point torture harness and the no-op-plan parity contract."""

import pytest

from repro.faults.hooks import FaultHooks
from repro.faults.plan import FaultPlan
from repro.faults.torture import (
    TortureConfig,
    build_workload,
    count_flash_ops,
    run_crash_point,
    run_torture,
)

from tests.conftest import make_timessd

SMOKE = TortureConfig(ops=120, crash_every=29)


class TestHarness:
    def test_workload_is_deterministic_and_mixed(self):
        config = TortureConfig()
        workload = build_workload(config)
        assert workload == build_workload(config)
        assert {op for op, _, _ in workload} == {"write", "trim"}
        # The fill prefix is sequential writes over the working set.
        prefix = workload[: config.working_set]
        assert [lpa for _, lpa, _ in prefix] == list(range(config.working_set))
        assert all(op == "write" for op, _, _ in prefix)

    def test_crash_point_smoke_sweep_recovers(self):
        report = run_torture(SMOKE)
        expected_cuts = -(-report.total_flash_ops // SMOKE.crash_every)
        assert report.cuts_tested == expected_cuts
        assert report.ok, "\n".join(report.summary_lines())

    def test_single_cut_outcome_details(self):
        config = TortureConfig(ops=80)
        total = count_flash_ops(config)
        assert total > config.working_set  # at least one program per fill op
        outcome = run_crash_point(config, cut_at=total // 2)
        assert outcome.ok, outcome.problems
        assert outcome.acked_ops > 0

    def test_clean_cut_sweep_also_recovers(self):
        report = run_torture(TortureConfig(ops=100, crash_every=43, torn=False))
        assert report.ok, "\n".join(report.summary_lines())
        # A clean cut commits nothing mid-program: no torn pages ever.
        assert all(o.torn_pages == 0 for o in report.outcomes)


@pytest.mark.slow
def test_exhaustive_crash_point_sweep():
    """Every flash op of the default workload is a survivable crash point."""
    report = run_torture(TortureConfig())
    assert report.ok, "\n".join(report.summary_lines())


class TestNoOpPlanParity:
    def test_empty_plan_changes_nothing(self):
        """Hooks with no armed spec are free: bit-identical device state."""

        def run(faults):
            ssd = make_timessd(faults=faults)
            for i in range(300):
                lpa = i % 40
                ssd.write(lpa)
                ssd.clock.advance(900)
                if i % 7 == 0:
                    ssd.trim((lpa + 13) % 40)
            return (
                ssd.clock.now_us,
                ssd.host_pages_written,
                ssd.gc_runs,
                ssd.background_gc_runs,
                ssd.device.counters.page_programs,
                ssd.device.counters.page_reads,
                ssd.device.counters.block_erases,
                ssd.retained_pages,
            )

        assert run(None) == run(FaultHooks(FaultPlan()))
