"""FaultPlan policy: triggers, scoping, determinism, the fired journal."""

import pytest

from repro.faults.plan import FaultKind, FaultPlan, FaultSpec, FiredFault, OpType


class TestSpecValidation:
    def test_requires_exactly_one_trigger(self):
        with pytest.raises(ValueError):
            FaultSpec(FaultKind.PROGRAM_FAIL)
        with pytest.raises(ValueError):
            FaultSpec(FaultKind.PROGRAM_FAIL, at_op=3, every=2)
        with pytest.raises(ValueError):
            FaultSpec(FaultKind.ERASE_FAIL, at_op=1, probability=0.5)

    def test_each_single_trigger_is_accepted(self):
        FaultSpec(FaultKind.PROGRAM_FAIL, at_op=1)
        FaultSpec(FaultKind.PROGRAM_FAIL, every=4)
        FaultSpec(FaultKind.PROGRAM_FAIL, probability=0.25)


class TestTriggers:
    def test_at_op_counts_all_flash_ops_globally(self):
        plan = FaultPlan()
        plan.add_erase_failure(at_op=3)
        assert plan.fire(OpType.ERASE, 0) is None  # op 1
        # Op 2 is a program: it cannot fire an erase fault, but it does
        # advance the global counter.
        assert plan.fire(OpType.PROGRAM, 5) is None
        assert plan.fire(OpType.ERASE, 1) is FaultKind.ERASE_FAIL  # op 3
        assert plan.ops_seen == 3

    def test_every_counts_only_matching_ops(self):
        plan = FaultPlan()
        spec = plan.add_program_failure(every=2, max_fires=None)
        fired = []
        for i in range(6):
            plan.fire(OpType.READ, i)  # reads never match a program fault
            fired.append(plan.fire(OpType.PROGRAM, i))
        assert fired == [None, FaultKind.PROGRAM_FAIL] * 3
        assert spec.fires == 3

    def test_probability_is_seed_deterministic(self):
        def journal(seed):
            plan = FaultPlan(seed=seed)
            plan.add_read_error(probability=0.3, max_fires=None)
            for i in range(200):
                plan.fire(OpType.READ, i)
            return [(f.op_index, f.kind) for f in plan.fired]

        assert journal(7) == journal(7)
        assert journal(7) != journal(8)
        assert 20 < len(journal(7)) < 120  # ~60 expected at p=0.3

    def test_max_fires_disarms_the_spec(self):
        plan = FaultPlan()
        plan.add_program_failure(every=1, max_fires=2)
        kinds = [plan.fire(OpType.PROGRAM, 0) for _ in range(5)]
        assert kinds == [FaultKind.PROGRAM_FAIL] * 2 + [None] * 3


class TestScopingAndPrecedence:
    def test_address_container_scope(self):
        plan = FaultPlan()
        plan.add_program_failure(every=1, max_fires=None, address={4, 5})
        assert plan.fire(OpType.PROGRAM, 3) is None
        assert plan.fire(OpType.PROGRAM, 4) is FaultKind.PROGRAM_FAIL

    def test_address_callable_scope(self):
        plan = FaultPlan()
        plan.add_erase_failure(
            every=1, max_fires=None, address=lambda pba: pba % 2 == 1
        )
        assert plan.fire(OpType.ERASE, 2) is None
        assert plan.fire(OpType.ERASE, 3) is FaultKind.ERASE_FAIL

    def test_first_armed_spec_wins(self):
        plan = FaultPlan()
        plan.add_torn_program(at_op=1)
        plan.add_program_failure(at_op=1)
        assert plan.fire(OpType.PROGRAM, 0) is FaultKind.TORN_PROGRAM
        assert len(plan.fired) == 1

    def test_torn_power_cut_on_a_program_reports_torn(self):
        plan = FaultPlan()
        plan.add_power_cut(at_op=1, torn=True)
        assert plan.fire(OpType.PROGRAM, 0) is FaultKind.TORN_PROGRAM

    def test_torn_power_cut_on_an_erase_stays_clean(self):
        plan = FaultPlan()
        plan.add_power_cut(at_op=1, torn=True)
        assert plan.fire(OpType.ERASE, 0) is FaultKind.POWER_CUT


class TestJournal:
    def test_empty_plan_observes_but_never_fires(self):
        plan = FaultPlan()
        for i in range(10):
            assert plan.fire(OpType.PROGRAM, i) is None
        assert plan.ops_seen == 10
        assert plan.fired == []

    def test_fired_journal_records_op_kind_and_address(self):
        plan = FaultPlan()
        plan.add_read_error(at_op=2)
        plan.fire(OpType.PROGRAM, 9)
        plan.fire(OpType.READ, 42)
        (entry,) = plan.fired
        assert entry == FiredFault(2, FaultKind.READ_UNCORRECTABLE, OpType.READ, 42)
