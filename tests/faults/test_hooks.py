"""Fault mechanics at the flash-device level: residue, raises, counters."""

import pytest

from repro.common.errors import (
    EraseFailureError,
    PowerCutError,
    ProgramFailureError,
    UncorrectableReadError,
)
from repro.faults.hooks import BURNED_PAGE, FaultHooks
from repro.faults.plan import FaultPlan
from repro.flash.device import FlashDevice
from repro.flash.geometry import FlashGeometry
from repro.flash.page import NULL_PPA, OOBMetadata, PageState


def make_device(plan):
    geometry = FlashGeometry(
        channels=2, blocks_per_plane=4, pages_per_block=4, page_size=16
    )
    return FlashDevice(geometry, fault_hooks=FaultHooks(plan))


def oob(lpa=0, ts=100):
    return OOBMetadata(lpa=lpa, back_pointer=NULL_PPA, timestamp_us=ts)


class TestTornProgram:
    def test_residue_is_half_a_page_under_a_torn_tag(self):
        plan = FaultPlan()
        plan.add_power_cut(at_op=1, torn=True)
        device = make_device(plan)
        with pytest.raises(PowerCutError) as excinfo:
            device.program_page(0, b"AAAABBBBCCCCDDDD", oob())
        assert excinfo.value.op_index == 1
        page = device.peek_page(0)
        assert page.state is PageState.PROGRAMMED
        assert not page.oob.intact
        assert page.data == b"AAAABBBB" + b"\x00" * 8
        # The op never committed as far as accounting is concerned...
        assert device.counters.page_programs == 0
        # ...but the page itself is consumed: the write pointer advanced.
        assert device.blocks[0].write_pointer == 1

    def test_clean_power_cut_leaves_no_residue(self):
        plan = FaultPlan()
        plan.add_power_cut(at_op=1, torn=False)
        device = make_device(plan)
        with pytest.raises(PowerCutError):
            device.program_page(0, b"x" * 16, oob())
        assert device.peek_page(0).state is PageState.ERASED
        assert device.blocks[0].write_pointer == 0


class TestProgramFailure:
    def test_transient_failure_burns_the_page_but_the_block_survives(self):
        plan = FaultPlan()
        plan.add_program_failure(at_op=1)
        device = make_device(plan)
        with pytest.raises(ProgramFailureError) as excinfo:
            device.program_page(0, b"y" * 16, oob())
        assert not excinfo.value.permanent
        assert not device.blocks[0].failed
        page = device.peek_page(0)
        assert page.state is PageState.PROGRAMMED
        assert not page.oob.intact
        # The next page of the same block still programs fine.
        device.program_page(1, b"z" * 16, oob())
        assert device.peek_page(1).oob.intact

    def test_permanent_failure_marks_the_block_bad(self):
        plan = FaultPlan()
        plan.add_program_failure(permanent=True, at_op=1)
        device = make_device(plan)
        with pytest.raises(ProgramFailureError) as excinfo:
            device.program_page(0, b"y" * 16, oob())
        assert excinfo.value.permanent
        assert device.blocks[0].failed
        # Every later program to the failed block is refused by the media
        # itself, before any fault plan is consulted.
        with pytest.raises(ProgramFailureError):
            device.program_page(1, b"z" * 16, oob())

    def test_modeled_content_burn_uses_the_marker(self):
        plan = FaultPlan()
        plan.add_program_failure(at_op=1)
        device = make_device(plan)
        with pytest.raises(ProgramFailureError):
            device.program_page(0, None, oob())
        assert device.peek_page(0).data == BURNED_PAGE


class TestEraseAndRead:
    def test_erase_failure_marks_the_block_bad_and_sticks(self):
        plan = FaultPlan()
        plan.add_erase_failure(at_op=1)
        device = make_device(plan)
        with pytest.raises(EraseFailureError):
            device.erase_block(0)
        assert device.blocks[0].failed
        # Grown-bad is media truth: later erases fail without the plan
        # (the device guard refuses before the hook is even consulted).
        with pytest.raises(EraseFailureError):
            device.erase_block(0)
        assert plan.ops_seen == 1

    def test_read_uncorrectable_is_raised_once(self):
        plan = FaultPlan()
        device = make_device(plan)
        device.program_page(0, b"k" * 16, oob())
        plan.add_read_error(every=1, max_fires=1)
        with pytest.raises(UncorrectableReadError):
            device.read_page(0)
        # One-shot spec: the retry succeeds and the data was never lost.
        assert device.read_page(0).data == b"k" * 16

    def test_op_counter_spans_all_op_types(self):
        plan = FaultPlan()
        device = make_device(plan)
        device.program_page(0, b"a" * 16, oob())
        device.read_page(0)
        device.program_page(1, b"b" * 16, oob())
        assert plan.ops_seen == 3
