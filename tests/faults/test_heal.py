"""Recoverable degraded mode: scrub-driven heal, dwell hysteresis, NVMe.

Degraded mode used to be exit-only-by-hand (``clear_degraded``).  With
the patrol scrubber the firmware heals itself: retire the grown-bad
blocks, dwell ``heal_dwell_us`` with no new program/erase failures, and
re-admit writes — without flapping under sustained faults.
"""

import pytest

from repro.common.errors import DegradedModeError, ProgramFailureError
from repro.common.units import SECOND_US
from repro.faults.hooks import FaultHooks
from repro.faults.plan import FaultPlan
from repro.ftl.block_manager import BlockKind
from repro.nvme.commands import NVMeCommand, Opcode, StatusCode
from repro.nvme.controller import NVMeController

from tests.conftest import make_regular_ssd

PAGE = b"payload".ljust(512, b"\0")
DWELL = 2 * SECOND_US


def make_healing_ssd(**overrides):
    plan = FaultPlan()
    params = dict(
        faults=FaultHooks(plan),
        patrol_scrub=True,
        heal_dwell_us=DWELL,
    )
    params.update(overrides)
    ssd = make_regular_ssd(**params)
    return ssd, plan


def degrade(ssd, plan):
    """Drive the device into degraded mode via program-retry exhaustion."""
    spec = plan.add_program_failure(every=1, max_fires=None)
    with pytest.raises(ProgramFailureError):
        ssd.write(0, PAGE)
    assert ssd.degraded_reason is not None
    return spec


def run_scrub(ssd, window_us=50_000):
    now = ssd.clock.now_us
    return ssd.scrubber.run(now, now + window_us)


class TestScrubDrivenHeal:
    def test_heal_after_dwell_restores_writes(self):
        ssd, plan = make_healing_ssd()
        spec = degrade(ssd, plan)
        spec.max_fires = spec.fires  # the media condition clears
        ssd.clock.advance(DWELL + 1)
        run_scrub(ssd)
        assert ssd.degraded_reason is None
        assert ssd.obs.metrics.counter("ftl.degraded.healed").value == 1
        ssd.write(1, PAGE)
        assert ssd.read(1)[0] == PAGE

    def test_heal_waits_out_the_dwell(self):
        ssd, plan = make_healing_ssd()
        spec = degrade(ssd, plan)
        spec.max_fires = spec.fires
        ssd.clock.advance(DWELL // 2)
        run_scrub(ssd)
        assert ssd.degraded_reason is not None  # dwell not yet served
        ssd.clock.advance(DWELL)
        run_scrub(ssd)
        assert ssd.degraded_reason is None

    def test_new_failures_restart_the_dwell(self):
        ssd, plan = make_healing_ssd()
        spec = degrade(ssd, plan)
        spec.max_fires = spec.fires
        ssd.clock.advance(DWELL - 1)
        # A background migration hits the media mid-dwell: the failure
        # counter moves, so the dwell must restart from here.
        ssd.program_failures += 1
        run_scrub(ssd)
        assert ssd.degraded_reason is not None
        ssd.clock.advance(DWELL // 2)
        run_scrub(ssd)
        assert ssd.degraded_reason is not None  # restarted dwell not served
        ssd.clock.advance(DWELL)
        run_scrub(ssd)
        assert ssd.degraded_reason is None

    def test_no_flapping_under_sustained_faults(self):
        ssd, plan = make_healing_ssd()
        degrade(ssd, plan)  # the fault stays armed: every program fails
        entered = ssd.obs.metrics.counter("ftl.degraded.entered")
        healed = ssd.obs.metrics.counter("ftl.degraded.healed")
        for _ in range(5):
            ssd.clock.advance(DWELL + 1)
            run_scrub(ssd)
            # Heal may succeed (no *new* failures: writes are refused in
            # degraded mode, so nothing programs) — but the next write
            # attempt immediately re-enters; the dwell then gates the
            # next heal, so entered/healed stay in lockstep, not a
            # runaway flap within one dwell period.
            if ssd.degraded_reason is None:
                with pytest.raises(ProgramFailureError):
                    ssd.write(0, PAGE)
                assert ssd.degraded_reason is not None
        assert entered.value == healed.value + (
            1 if ssd.degraded_reason is not None else 0
        )
        assert entered.value <= 6

    def test_reentry_after_manual_clear_still_heals_later(self):
        ssd, plan = make_healing_ssd()
        spec = degrade(ssd, plan)
        ssd.clear_degraded()
        with pytest.raises(ProgramFailureError):
            ssd.write(0, PAGE)  # fault still armed: re-enters immediately
        assert ssd.degraded_reason is not None
        assert ssd.obs.metrics.counter("ftl.degraded.entered").value == 2
        spec.max_fires = spec.fires
        ssd.clock.advance(DWELL + 1)
        run_scrub(ssd)
        assert ssd.degraded_reason is None
        ssd.write(2, PAGE)
        assert ssd.read(2)[0] == PAGE

    def test_pool_shrunk_below_capacity_never_heals(self):
        ssd, _plan = make_healing_ssd()
        bm = ssd.block_manager
        geo = ssd.device.geometry
        needed = -(-ssd.logical_pages // geo.pages_per_block)
        needed += ssd.config.gc_low_watermark
        to_retire = geo.total_blocks - needed + 1
        free = [
            pba
            for pba in range(geo.total_blocks)
            if bm.kind(pba) is BlockKind.FREE
        ]
        for pba in free[:to_retire]:
            ssd.device.blocks[pba].failed = True
            bm.retire_failed_block(pba)
        with pytest.raises(DegradedModeError):
            ssd.write(1, PAGE)
        ssd.clock.advance(10 * DWELL)
        run_scrub(ssd)
        # Block.failed is media truth: no amount of scrubbing brings the
        # pool back above logical capacity.
        assert ssd.degraded_reason is not None

    def test_scrub_retires_condemned_blocks_before_healing(self):
        ssd, plan = make_healing_ssd()
        # A permanent bad page: the write is remapped and acked, the
        # block is condemned (sealed, Block.failed) but not yet retired.
        plan.add_program_failure(permanent=True, every=1, max_fires=1)
        ssd.write(0, PAGE)
        bad_pba = ssd.device.geometry.block_of_page(plan.fired[0].address)
        assert ssd.device.blocks[bad_pba].failed
        ssd._enter_degraded("injected: media instability")
        ssd.clock.advance(DWELL + 1)
        run_scrub(ssd, window_us=500_000)
        assert ssd.block_manager.kind(bad_pba) is BlockKind.RETIRED
        assert ssd.obs.metrics.counter("scrub.blocks_retired").value == 1
        assert ssd.degraded_reason is None
        ssd.write(1, PAGE)
        assert ssd.read(1)[0] == PAGE
        assert ssd.read(0)[0] == PAGE  # data survived the retirement


class TestNVMeHealTransitions:
    def _controller(self):
        ssd, plan = make_healing_ssd()
        return NVMeController(ssd), ssd, plan

    def test_degraded_read_only_then_success_after_heal(self):
        ctrl, ssd, plan = self._controller()
        assert ctrl.submit(NVMeCommand(Opcode.WRITE, slba=0)).ok
        spec = plan.add_program_failure(every=1, max_fires=None)
        fail = ctrl.submit(NVMeCommand(Opcode.WRITE, slba=1))
        assert fail.status is StatusCode.MEDIA_WRITE_FAULT
        blocked = ctrl.submit(NVMeCommand(Opcode.WRITE, slba=2))
        assert blocked.status is StatusCode.DEGRADED_READ_ONLY
        assert ctrl.submit(NVMeCommand(Opcode.READ, slba=0)).ok
        # Media stabilises; the scrubber heals after the dwell.
        spec.max_fires = spec.fires
        ssd.clock.advance(DWELL + 1)
        run_scrub(ssd)
        write = ctrl.submit(NVMeCommand(Opcode.WRITE, slba=2))
        assert write.status is StatusCode.SUCCESS
        trim = ctrl.submit(NVMeCommand(Opcode.DSM, slba=0))
        assert trim.status is StatusCode.SUCCESS
