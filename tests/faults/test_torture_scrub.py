"""Crash-point torture with aging + patrol scrub enabled (ISSUE 7).

The scrub preset turns on the time-aware error model and the patrol
scrubber, so the enumerated crash points also land inside patrol reads,
read-retry ladders and scrub refresh migrations.  The contract under
test: a power cut mid-refresh never loses the at-risk page's only
intact copy — either the old copy is still committed, or the new copy
is, and recovery finds whichever one is.
"""

from repro.common.errors import PowerCutError
from repro.faults.plan import FaultPlan
from repro.faults.torture import (
    _build_ssd,
    _replay,
    build_workload,
    run_crash_point,
    run_torture,
    scrub_preset,
)
from repro.timessd.recovery import rebuild_from_flash, simulate_power_loss
from repro.timessd.verify import DeviceAuditor


class TestScrubSweep:
    def test_smoke_sweep_recovers_and_actually_scrubbed(self):
        report = run_torture(scrub_preset(ops=100, crash_every=31))
        assert report.ok, "\n".join(report.summary_lines())
        # The sweep is only meaningful if scrub work really happened:
        # patrol reads and refresh migrations are flash ops, so crash
        # points landed inside them.
        assert report.scrub_patrol_reads > 0
        assert report.scrub_refreshes > 0
        assert any("scrub coverage" in line for line in report.summary_lines())

    def test_torn_cut_with_idle_windows_recovers(self):
        """Pinned regression: cut 57 of the default scrub preset tears a
        host program and leaves the torn page on flash; the wide idle
        windows then run background compression after recovery, which
        once compressed the torn residue into a forged version."""
        outcome = run_crash_point(scrub_preset(), cut_at=57)
        assert outcome.ok, outcome.problems
        assert outcome.torn_pages == 1


def _discover_refresh_ops(config, attr):
    """Flash-op indices at which the clean run enters a refresh step.

    Spies on the scrubber hook named ``attr`` and records the fault
    plan's op counter at entry: the next flash op is the refresh's first
    media operation, so ``index + 1`` is a mid-refresh crash point.
    """
    workload = build_workload(config)
    plan = FaultPlan(seed=config.seed)
    ssd = _build_ssd(config, plan)
    marks = []
    target = ssd.scrubber if attr == "_refresh_valid" else ssd
    original = getattr(target, attr)

    def spy(*args, **kwargs):
        marks.append(plan.ops_seen)
        return original(*args, **kwargs)

    setattr(target, attr, spy)
    _replay(ssd, workload, config.gap_us)
    return marks


class TestCutInsideRefresh:
    CONFIG = scrub_preset()

    def _check_cuts(self, marks):
        assert marks, "the clean run never refreshed anything"
        workload = build_workload(self.CONFIG)
        for mark in marks[:4]:
            outcome = run_crash_point(self.CONFIG, mark + 1, workload)
            assert outcome.ok, (mark, outcome.problems)

    def test_cut_inside_valid_page_refresh_migration(self):
        self._check_cuts(_discover_refresh_ops(self.CONFIG, "_refresh_valid"))

    def test_cut_inside_retained_version_refresh(self):
        self._check_cuts(
            _discover_refresh_ops(self.CONFIG, "_refresh_retained_page")
        )


class TestRefreshDuplicateRecovery:
    """A cut between the refresh program and the (volatile) PRT mark
    leaves two intact copies with the same (LPA, timestamp) on flash."""

    def _ssd_with_duplicate(self):
        config = scrub_preset()
        plan = FaultPlan(seed=config.seed)
        ssd = _build_ssd(config, plan)
        payload = (b"dup-victim").ljust(ssd.device.geometry.page_size, b"\xEE")
        try:
            ssd.write(5, payload)
        except PowerCutError:  # pragma: no cover - no fault armed
            raise
        head = ssd.mapping.lookup(5)
        # Force a refresh migration of the live head, then erase the
        # volatile PRT mark as a crash would.
        ssd.scrubber._scrub_page(head, ssd.clock.now_us, force_refresh=True)
        new_head = ssd.mapping.lookup(5)
        assert new_head != head
        ts = ssd.device.peek_page(head).oob.timestamp_us
        assert ssd.device.peek_page(new_head).oob.timestamp_us == ts
        return ssd, payload, ts, (head, new_head)

    def test_rebuild_marks_the_duplicate_reclaimable(self):
        ssd, payload, ts, copies = self._ssd_with_duplicate()
        simulate_power_loss(ssd)
        rebuild_from_flash(ssd)
        mapped = ssd.mapping.lookup(5)
        assert mapped in copies
        other = copies[0] if mapped == copies[1] else copies[1]
        # The losing copy is the same version, not retained history.
        assert ssd.index.is_reclaimable(other)
        assert ssd.read(5)[0] == payload
        versions, _ = ssd.version_chain(5)
        assert [v.timestamp_us for v in versions] == [ts]
        assert not DeviceAuditor(ssd).audit().violations

    def test_rebuild_is_deterministic_about_the_winner(self):
        first = []
        for _ in range(2):
            ssd, _payload, _ts, _copies = self._ssd_with_duplicate()
            simulate_power_loss(ssd)
            rebuild_from_flash(ssd)
            first.append(ssd.mapping.lookup(5))
        assert first[0] == first[1]
