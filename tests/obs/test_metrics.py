"""Unit tests for the metrics primitives (Counter/Gauge/Histogram/Registry)."""

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import ReproError
from repro.obs.metrics import Counter, Gauge, LatencyHistogram, MetricsRegistry


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        c = Counter("x")
        assert c.value == 0
        c.inc()
        c.inc(5)
        assert c.value == 6

    def test_rejects_decrease(self):
        with pytest.raises(ReproError):
            Counter("x").inc(-1)


class TestGauge:
    def test_set_overwrites(self):
        g = Gauge("x")
        g.set(10)
        g.set(3)
        assert g.value == 3


class TestLatencyHistogram:
    def test_empty(self):
        h = LatencyHistogram("x")
        assert h.count == 0
        assert h.mean_us == 0.0
        assert h.percentile(50) == 0.0
        assert h.percentile(0) == 0.0
        assert h.percentile(100) == 0.0

    def test_small_values_exact(self):
        h = LatencyHistogram("x")
        for v in (0, 1, 5, 15):
            h.record(v)
        assert h.bucket_counts() == [(0, 1), (1, 1), (5, 1), (15, 1)]

    def test_exact_extremes(self):
        h = LatencyHistogram("x")
        for v in (75, 750, 123_456):
            h.record(v)
        assert h.percentile(0) == 75.0
        assert h.percentile(100) == 123_456.0
        assert h.min_us == 75
        assert h.max_us == 123_456

    def test_mean_and_total_exact(self):
        h = LatencyHistogram("x")
        for v in (10, 20, 99):
            h.record(v)
        assert h.total_us == 129
        assert h.mean_us == pytest.approx(129 / 3)

    def test_single_sample(self):
        h = LatencyHistogram("x")
        h.record(750)
        for p in (0, 1, 50, 99, 100):
            assert h.percentile(p) == 750.0

    def test_rejects_negative(self):
        with pytest.raises(ReproError):
            LatencyHistogram("x").record(-1)

    def test_percentile_bounds_checked(self):
        h = LatencyHistogram("x")
        h.record(1)
        with pytest.raises(ReproError):
            h.percentile(101)
        with pytest.raises(ReproError):
            h.percentile(-0.5)

    def test_relative_error_bounded(self):
        # Every recorded value lands in a bucket whose bounds are within
        # 1/16 of its magnitude; the reported percentile (bucket upper
        # bound) can overshoot the true value by at most ~6.7%.
        h = LatencyHistogram("x")
        value = 1_000_003
        h.record(value)
        reported = h.percentile(50)
        assert value <= reported <= value * (1 + 1 / 15)

    def test_percentiles_monotonic(self):
        h = LatencyHistogram("x")
        for v in range(0, 5000, 7):
            h.record(v)
        ps = [h.percentile(p) for p in (1, 10, 25, 50, 75, 90, 99)]
        assert ps == sorted(ps)

    @given(st.lists(st.integers(min_value=0, max_value=10**7), min_size=1, max_size=300))
    @settings(max_examples=60, deadline=None)
    def test_count_equals_bucket_sum(self, values):
        h = LatencyHistogram("x")
        for v in values:
            h.record(v)
        assert h.count == sum(n for _low, n in h.bucket_counts())
        assert h.count == len(values)

    @given(st.lists(st.integers(min_value=0, max_value=10**7), min_size=1, max_size=300))
    @settings(max_examples=60, deadline=None)
    def test_percentiles_within_range(self, values):
        h = LatencyHistogram("x")
        for v in values:
            h.record(v)
        lo, hi = min(values), max(values)
        for p in (0, 10, 50, 90, 100):
            assert lo <= h.percentile(p) <= hi

    def test_bucket_bounds_roundtrip(self):
        for value in (0, 1, 15, 16, 17, 31, 32, 100, 1023, 1024, 10**6, 10**9):
            index = LatencyHistogram._bucket_index(value)
            low, high = LatencyHistogram._bucket_bounds(index)
            assert low <= value <= high


class TestMetricsRegistry:
    def test_get_or_create_returns_same_object(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.histogram("h") is reg.histogram("h")

    def test_type_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("a")
        with pytest.raises(ReproError):
            reg.gauge("a")
        with pytest.raises(ReproError):
            reg.histogram("a")

    def test_snapshot_groups_and_sorts(self):
        reg = MetricsRegistry()
        reg.counter("z.count").inc(2)
        reg.gauge("a.gauge").set(7)
        reg.histogram("m.hist").record(10)
        snap = reg.snapshot()
        assert snap["counters"] == {"z.count": 2}
        assert snap["gauges"] == {"a.gauge": 7}
        assert snap["histograms"]["m.hist"]["count"] == 1
        assert list(snap["counters"]) == sorted(snap["counters"])

    def test_snapshot_is_json_stable(self):
        def build():
            reg = MetricsRegistry()
            reg.counter("b").inc(3)
            reg.counter("a").inc(1)
            reg.histogram("h").record(99)
            reg.gauge("g").set(-4)
            return reg.to_json()

        first, second = build(), build()
        assert first == second
        json.loads(first)  # valid JSON

    def test_insertion_order_does_not_change_snapshot(self):
        reg1 = MetricsRegistry()
        reg1.counter("a").inc()
        reg1.counter("b").inc()
        reg2 = MetricsRegistry()
        reg2.counter("b").inc()
        reg2.counter("a").inc()
        assert reg1.to_json() == reg2.to_json()

    def test_get_and_names(self):
        reg = MetricsRegistry()
        c = reg.counter("only")
        assert reg.get("only") is c
        assert reg.get("missing") is None
        assert reg.names() == ["only"]
