"""Metrics wired through the device stack agree with first-party accounting."""

import pytest

from repro.nvme import HostNVMeDriver, NVMeCommand, Opcode, StatusCode

from tests.conftest import fill_and_churn, make_regular_ssd, make_timessd


def counter(ssd, name):
    metric = ssd.obs.metrics.get(name)
    return metric.value if metric is not None else 0


class TestFlashCounters:
    @pytest.mark.parametrize("factory", [make_regular_ssd, make_timessd])
    def test_match_legacy_op_counters(self, factory):
        ssd = fill_and_churn(factory(), working_set=400, churn_writes=1200)
        legacy = ssd.device.counters
        assert counter(ssd, "flash.reads") == legacy.page_reads
        assert counter(ssd, "flash.programs") == legacy.page_programs
        assert counter(ssd, "flash.erases") == legacy.block_erases

    @pytest.mark.parametrize("factory", [make_regular_ssd, make_timessd])
    def test_histogram_counts_match_op_counts(self, factory):
        ssd = fill_and_churn(factory(), working_set=300, churn_writes=800)
        metrics = ssd.obs.metrics
        legacy = ssd.device.counters
        assert metrics.get("flash.program_us").count == legacy.page_programs
        assert metrics.get("flash.erase_us").count == legacy.block_erases
        if legacy.page_reads:
            assert metrics.get("flash.read_us").count == legacy.page_reads


class TestHostCounters:
    @pytest.mark.parametrize("factory", [make_regular_ssd, make_timessd])
    def test_host_write_read_counters(self, factory):
        ssd = factory()
        for lpa in range(50):
            ssd.write(lpa)
            ssd.clock.advance(1000)
        for lpa in range(20):
            ssd.read(lpa)
        assert counter(ssd, "ftl.host_writes") == 50 == ssd.host_pages_written
        assert counter(ssd, "ftl.host_reads") == 20 == ssd.host_pages_read
        assert ssd.write_latency.count == 50
        assert ssd.read_latency.count == 20


class TestGCAccounting:
    def test_regular_program_identity(self):
        # Fault-free, every flash program is either a host write or a
        # GC migration — the gc.pages_migrated counter must close the
        # books against the device's own program count.
        ssd = fill_and_churn(make_regular_ssd(), working_set=600, churn_writes=4000)
        assert ssd.gc_runs > 0
        migrated = counter(ssd, "gc.pages_migrated")
        assert migrated > 0
        assert (
            ssd.device.counters.page_programs
            == ssd.host_pages_written + migrated
        )

    def test_timessd_program_identity(self):
        # TimeSSD adds one more program source: packed delta segments.
        ssd = fill_and_churn(make_timessd(), working_set=600, churn_writes=4000)
        migrated = counter(ssd, "gc.pages_migrated")
        flushed = counter(ssd, "timessd.delta.flushed_pages")
        assert (
            ssd.device.counters.page_programs
            == ssd.host_pages_written + migrated + flushed
        )

    def test_gc_run_counters_match_properties(self):
        ssd = fill_and_churn(make_regular_ssd(), working_set=600, churn_writes=4000)
        assert counter(ssd, "gc.runs") == ssd.gc_runs
        assert counter(ssd, "gc.background_runs") == ssd.background_gc_runs


class TestTimeSSDCounters:
    def test_delta_compressions_match_legacy(self):
        ssd = fill_and_churn(make_timessd(), working_set=600, churn_writes=4000)
        assert (
            counter(ssd, "timessd.delta.compressions")
            == ssd.device.counters.delta_compressions
        )

    def test_chain_length_histogram_records_queries(self):
        ssd = make_timessd()
        for _ in range(3):
            ssd.write(5)
            ssd.clock.advance(1000)
        ssd.version_chain(5)
        hist = ssd.obs.metrics.get("timessd.chain.length")
        assert hist.count == 1
        assert hist.max_us == 3  # chain length, not a latency


class TestNVMeMetrics:
    def test_per_opcode_counters_and_latency(self):
        driver = HostNVMeDriver(make_regular_ssd())
        size = driver.controller.ssd.device.geometry.page_size
        driver.write(0, [b"x".ljust(size, b"\0")])
        driver.read(0)
        metrics = driver.controller.obs.metrics
        assert metrics.get("nvme.op.WRITE").value == 1
        assert metrics.get("nvme.op.READ").value == 1
        assert metrics.get("nvme.status.SUCCESS").value == 2
        assert metrics.get("nvme.op.WRITE_us").count == 1
        assert metrics.get("nvme.op.READ_us").count == 1

    def test_error_status_counted_without_latency_sample(self):
        driver = HostNVMeDriver(make_regular_ssd())
        completion = driver.controller.submit(
            NVMeCommand(Opcode.READ, slba=10**9, nlb=1)
        )
        assert completion.status is StatusCode.LBA_OUT_OF_RANGE
        metrics = driver.controller.obs.metrics
        assert metrics.get("nvme.status.LBA_OUT_OF_RANGE").value == 1
        hist = metrics.get("nvme.op.READ_us")
        assert hist is None or hist.count == 0

    def test_controller_shares_ssd_scope(self):
        ssd = make_regular_ssd()
        driver = HostNVMeDriver(ssd)
        assert driver.controller.obs is ssd.obs
