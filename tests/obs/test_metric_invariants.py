"""Cross-cutting metric invariants: physics the snapshot must obey."""

import pytest

from tests.conftest import fill_and_churn, make_regular_ssd, make_timessd


@pytest.fixture(scope="module", params=["regular", "timessd"])
def churned(request):
    factory = make_regular_ssd if request.param == "regular" else make_timessd
    ssd = fill_and_churn(factory(), working_set=600, churn_writes=4000)
    return ssd, ssd.metrics_snapshot()


class TestWriteAmplification:
    def test_wa_at_least_one_when_writing(self, churned):
        ssd, snap = churned
        assert snap["gauges"]["ftl.wa.host_writes"] > 0
        assert snap["gauges"]["ftl.write_amplification"] >= 1.0
        assert ssd.write_amplification >= 1.0

    def test_wa_numerator_and_denominator_exposed(self, churned):
        _ssd, snap = churned
        gauges = snap["gauges"]
        assert gauges["ftl.wa.flash_programs"] >= gauges["ftl.wa.host_writes"]
        ratio = gauges["ftl.wa.flash_programs"] / gauges["ftl.wa.host_writes"]
        assert gauges["ftl.write_amplification"] == pytest.approx(ratio, abs=1e-6)


class TestBusyTime:
    def test_channel_busy_bounded_by_elapsed(self, churned):
        ssd, snap = churned
        elapsed = snap["gauges"]["sim.now_us"]
        channels = ssd.device.geometry.channels
        per_channel = [
            value
            for name, value in snap["gauges"].items()
            if name.startswith("flash.channel_busy_us.")
        ]
        assert len(per_channel) == channels
        assert all(0 <= busy <= elapsed for busy in per_channel)
        assert snap["gauges"]["flash.busy_us_total"] == sum(per_channel)
        assert snap["gauges"]["flash.busy_us_total"] <= elapsed * channels

    def test_chip_busy_bounded_by_elapsed(self, churned):
        ssd, snap = churned
        elapsed = snap["gauges"]["sim.now_us"]
        per_chip = [
            value
            for name, value in snap["gauges"].items()
            if name.startswith("flash.chip_busy_us.")
        ]
        assert per_chip
        assert all(0 <= busy <= elapsed for busy in per_chip)
        assert snap["gauges"]["flash.chip_busy_us_total"] <= elapsed * len(per_chip)


class TestHistogramConsistency:
    def test_every_snapshot_histogram_is_internally_consistent(self, churned):
        _ssd, snap = churned
        assert snap["histograms"]
        for name, hist in snap["histograms"].items():
            bucket_sum = sum(count for _low, count in hist["buckets"])
            assert hist["count"] == bucket_sum, name
            if hist["count"]:
                assert hist["min_us"] <= hist["p50_us"] <= hist["max_us"], name
                assert hist["p50_us"] <= hist["p90_us"] <= hist["p99_us"], name
                assert hist["total_us"] >= hist["count"] * hist["min_us"], name
                assert hist["total_us"] <= hist["count"] * hist["max_us"], name

    def test_latency_histograms_have_positive_means(self, churned):
        _ssd, snap = churned
        write_us = snap["histograms"]["ftl.write_us"]
        assert write_us["count"] > 0
        assert write_us["mean_us"] > 0


class TestCounterMonotonicity:
    def test_counters_never_negative_and_snapshot_monotone(self):
        ssd = make_regular_ssd()
        before = ssd.metrics_snapshot()["counters"]
        fill_and_churn(ssd, working_set=200, churn_writes=500)
        after = ssd.metrics_snapshot()["counters"]
        for name, value in after.items():
            assert value >= 0
            assert value >= before.get(name, 0), name


class TestTracingDisabledIsInert:
    def test_no_events_accumulate_when_disabled(self):
        ssd = fill_and_churn(make_timessd(), working_set=300, churn_writes=1000)
        assert not ssd.obs.trace.enabled
        assert len(ssd.obs.trace) == 0
        assert ssd.obs.trace.dropped == 0

    def test_metrics_identical_with_and_without_tracing(self):
        # Tracing must be pure observation: enabling it cannot perturb
        # a single metric (and therefore cannot perturb behaviour).
        plain = fill_and_churn(make_timessd(), 300, 1000)
        traced = fill_and_churn(make_timessd(tracing=True), 300, 1000)
        assert plain.obs.metrics.to_json() == traced.obs.metrics.to_json()
        assert len(traced.obs.trace) > 0
