"""Golden determinism: same (seed, workload) => byte-identical snapshots."""

import pytest

from repro.bench import emit
from repro.common.errors import UncorrectableReadError
from repro.faults.hooks import FaultHooks
from repro.faults.plan import FaultPlan

from tests.conftest import fill_and_churn, make_regular_ssd, make_timessd


def run_regular(seed):
    ssd = fill_and_churn(make_regular_ssd(), 500, 2000, seed=seed)
    return ssd.obs.metrics.to_json(indent=2)


def run_timessd(seed):
    ssd = fill_and_churn(make_timessd(tracing=True), 500, 2000, seed=seed)
    return (
        ssd.obs.metrics.to_json(indent=2),
        ssd.obs.trace.drain(),
        ssd.obs.trace.dropped,
    )


def run_fault_plan(seed):
    plan = FaultPlan(seed=seed)
    plan.add_program_failure(every=97)
    plan.add_read_error(every=211)
    ssd = fill_and_churn(
        make_regular_ssd(faults=FaultHooks(plan)), 400, 1500, seed=seed
    )
    for lpa in range(0, 400, 7):
        try:
            ssd.read(lpa)
        except UncorrectableReadError:
            pass  # injected; the fault counters still advance deterministically
    return ssd.obs.metrics.to_json(indent=2)


class TestGoldenSnapshots:
    @pytest.mark.parametrize("seed", [7, 1234])
    def test_regular_two_runs_byte_identical(self, seed):
        assert run_regular(seed) == run_regular(seed)

    @pytest.mark.parametrize("seed", [7, 1234])
    def test_timessd_two_runs_byte_identical(self, seed):
        first, second = run_timessd(seed), run_timessd(seed)
        assert first[0] == second[0]  # metrics JSON
        assert first[1] == second[1]  # full event ring
        assert first[2] == second[2]  # dropped count

    def test_fault_plan_run_byte_identical(self):
        assert run_fault_plan(99) == run_fault_plan(99)

    def test_different_seeds_diverge(self):
        # Guards against the snapshot accidentally ignoring the workload.
        assert run_regular(1) != run_regular(2)


class TestDemoAndBenchGolden:
    def test_demo_snapshot_byte_identical(self):
        first = emit.to_canonical_json(emit.demo_snapshot("timessd", seed=7, writes=300))
        second = emit.to_canonical_json(emit.demo_snapshot("timessd", seed=7, writes=300))
        assert first == second

    def test_demo_snapshot_with_trace_byte_identical(self):
        kwargs = dict(kind="regular", seed=3, writes=200, tracing=True)
        first = emit.to_canonical_json(emit.demo_snapshot(**kwargs))
        second = emit.to_canonical_json(emit.demo_snapshot(**kwargs))
        assert first == second

    @pytest.mark.slow
    def test_bench_smoke_byte_identical(self):
        first = emit.to_canonical_json(emit.bench_smoke_snapshots(seed=1, writes=600))
        second = emit.to_canonical_json(emit.bench_smoke_snapshots(seed=1, writes=600))
        assert first == second

    def test_bench_file_round_trips(self, tmp_path):
        import json

        path = tmp_path / "BENCH_pr4.json"
        emit.write_bench_json(path=str(path), seed=1, writes=200)
        payload = json.loads(path.read_text())
        assert payload["schema"] == emit.SCHEMA
        assert set(payload["devices"]) == {"regular", "timessd"}
        for device in payload["devices"].values():
            assert "metrics" in device and "summary" in device
            assert device["summary"]["write_amplification"] >= 1.0
