"""Unit tests for the ring-buffer structured event tracer."""

import pytest

from repro.common.errors import ReproError
from repro.obs.tracer import CATEGORIES, EventTracer
from repro.obs.scope import Scope


class TestEventTracer:
    def test_disabled_by_default_and_records_nothing(self):
        tr = EventTracer()
        assert not tr.enabled
        tr.emit("gc", "reclaim", 10, pba=3)
        assert len(tr) == 0
        assert tr.events() == []

    def test_enabled_records_structured_events(self):
        tr = EventTracer(enabled=True)
        tr.emit("gc", "reclaim", 10, pba=3, migrated=2)
        tr.emit("flash-op", "read", 12, ppa=44)
        events = tr.events()
        assert len(events) == 2
        assert events[0] == {
            "seq": 0,
            "t_us": 10,
            "cat": "gc",
            "name": "reclaim",
            "pba": 3,
            "migrated": 2,
        }
        assert events[1]["seq"] == 1
        assert events[1]["cat"] == "flash-op"

    def test_unknown_category_rejected(self):
        tr = EventTracer(enabled=True)
        with pytest.raises(ReproError):
            tr.emit("bogus", "x", 0)

    def test_all_declared_categories_accepted(self):
        tr = EventTracer(enabled=True)
        for cat in CATEGORIES:
            tr.emit(cat, "ok", 1)
        assert len(tr) == len(CATEGORIES)

    def test_category_filter(self):
        tr = EventTracer(enabled=True)
        tr.emit("gc", "a", 1)
        tr.emit("nvme", "b", 2)
        tr.emit("gc", "c", 3)
        assert [e["name"] for e in tr.events("gc")] == ["a", "c"]
        assert [e["name"] for e in tr.events("nvme")] == ["b"]

    def test_ring_capacity_drops_oldest(self):
        tr = EventTracer(capacity=3, enabled=True)
        for i in range(5):
            tr.emit("gc", "e", i)
        events = tr.events()
        assert len(events) == 3
        assert [e["t_us"] for e in events] == [2, 3, 4]
        assert tr.dropped == 2
        # seq numbers keep increasing past drops
        assert [e["seq"] for e in events] == [2, 3, 4]

    def test_drain_returns_and_clears(self):
        tr = EventTracer(enabled=True)
        tr.emit("delta", "flush", 5)
        drained = tr.drain()
        assert len(drained) == 1
        assert len(tr) == 0
        tr.emit("delta", "flush", 6)
        # seq continues after drain
        assert tr.events()[0]["seq"] == 1

    def test_clear(self):
        tr = EventTracer(enabled=True)
        tr.emit("fault", "READ_FLIP", 1)
        tr.clear()
        assert len(tr) == 0


class TestScope:
    def test_bundles_metrics_and_trace(self):
        scope = Scope(tracing=True, trace_capacity=8)
        scope.metrics.counter("c").inc(2)
        scope.trace.emit("gc", "reclaim", 1)
        snap = scope.snapshot()
        assert snap["counters"]["c"] == 2
        assert len(scope.trace) == 1

    def test_default_scope_tracing_off(self):
        scope = Scope()
        assert not scope.trace.enabled

    def test_scopes_are_independent(self):
        a, b = Scope(), Scope()
        a.metrics.counter("c").inc()
        assert b.metrics.get("c") is None
