"""Unit tests for the deterministic event loop (repro.sched.core)."""

import pytest

from repro.common.clock import SimClock
from repro.sched import (
    Acquire,
    At,
    Delay,
    EventLoop,
    FifoTieBreak,
    Join,
    Lane,
    Release,
    SchedulerError,
    SeededTieBreak,
)


def make_loop(tie_break=None):
    return EventLoop(SimClock(), tie_break=tie_break)


class TestDispatchOrder:
    def test_delays_advance_the_clock_in_event_order(self):
        loop = make_loop()
        log = []

        def task(name, delays):
            for d in delays:
                yield Delay(d)
                log.append((name, loop.now_us))

        loop.spawn(task("a", [30, 30]), name="a")
        loop.spawn(task("b", [20, 50]), name="b")
        loop.run()
        assert log == [("b", 20), ("a", 30), ("a", 60), ("b", 70)]
        assert loop.now_us == 70
        assert loop.idle

    def test_same_timestamp_events_run_fifo_by_default(self):
        loop = make_loop()
        log = []

        def task(name):
            yield Delay(10)
            log.append(name)

        for name in "abcd":
            loop.spawn(task(name), name=name)
        loop.run()
        assert log == list("abcd")

    def test_at_in_the_past_is_clamped_to_now(self):
        loop = make_loop()
        log = []

        def task():
            yield Delay(50)
            yield At(10)  # already past; resumes immediately at t=50
            log.append(loop.now_us)

        loop.spawn(task(), name="t")
        loop.run()
        assert log == [50]

    def test_run_until_leaves_future_events_queued(self):
        loop = make_loop()

        def task():
            yield Delay(100)

        loop.spawn(task(), name="t")
        loop.run(until_us=50)
        assert not loop.idle
        assert loop.pending_events() == 1
        loop.run()
        assert loop.idle

    def test_spawn_at_us_schedules_first_run(self):
        loop = make_loop()
        log = []

        def task():
            log.append(loop.now_us)
            return
            yield  # pragma: no cover - marks this as a generator

        loop.spawn(task(), name="t", at_us=42)
        loop.run()
        assert log == [42]


class TestWaitValidation:
    def test_delay_rejects_negative_and_non_int(self):
        with pytest.raises(SchedulerError):
            Delay(-1)
        with pytest.raises(SchedulerError):
            Delay(1.5)
        with pytest.raises(SchedulerError):
            Delay(True)
        with pytest.raises(SchedulerError):
            At("soon")

    def test_yielding_a_non_instruction_fails_loud(self):
        loop = make_loop()

        def task():
            yield 42

        loop.spawn(task(), name="t")
        with pytest.raises(SchedulerError):
            loop.run()


class TestLanes:
    def test_lane_hands_off_fifo(self):
        loop = make_loop()
        lane = Lane("turnstile")
        log = []

        def task(name):
            yield Acquire(lane)
            log.append(("enter", name, loop.now_us))
            yield Delay(10)
            yield Release(lane)
            log.append(("exit", name, loop.now_us))

        for name in "abc":
            loop.spawn(task(name), name=name)
        loop.run()
        entries = [entry[1] for entry in log if entry[0] == "enter"]
        assert entries == list("abc")
        # Exclusive: each holder's 10us window ends before the next enters.
        enters = {e[1]: e[2] for e in log if e[0] == "enter"}
        assert enters == {"a": 0, "b": 10, "c": 20}
        assert lane.free

    def test_release_of_unheld_lane_is_an_error(self):
        loop = make_loop()
        lane = Lane("l")

        def task():
            yield Release(lane)

        loop.spawn(task(), name="t")
        with pytest.raises(SchedulerError):
            loop.run()

    def test_finishing_while_holding_a_lane_is_an_error(self):
        loop = make_loop()
        lane = Lane("l")

        def task():
            yield Acquire(lane)

        loop.spawn(task(), name="t")
        with pytest.raises(SchedulerError):
            loop.run()


class TestJoinAndDaemons:
    def test_join_receives_the_target_result(self):
        loop = make_loop()
        got = []

        def worker():
            yield Delay(30)
            return "payload"

        def waiter(target):
            result = yield Join(target)
            got.append((result, loop.now_us))

        target = loop.spawn(worker(), name="w")
        loop.spawn(waiter(target), name="j")
        loop.run()
        assert got == [("payload", 30)]

    def test_join_on_finished_task_resumes_immediately(self):
        loop = make_loop()

        def worker():
            return "done"
            yield  # pragma: no cover

        target = loop.spawn(worker(), name="w")
        loop.run()
        got = []

        def waiter():
            got.append((yield Join(target)))

        loop.spawn(waiter(), name="j")
        loop.run()
        assert got == ["done"]

    def test_daemons_do_not_keep_the_loop_alive(self):
        loop = make_loop()
        ticks = []

        def daemon():
            while True:
                yield Delay(5)
                ticks.append(loop.now_us)

        def worker():
            yield Delay(12)

        loop.spawn(daemon(), name="d", daemon=True)
        loop.spawn(worker(), name="w")
        loop.run()
        # The daemon interleaves while the worker lives, then the loop
        # stops: no daemon tick past the last non-daemon event.
        assert ticks == [5, 10]
        assert loop.now_us == 12


class TestTieBreak:
    def test_seeded_tiebreak_is_deterministic(self):
        a, b = SeededTieBreak(9), SeededTieBreak(9)
        keys_a = [a.key(t, s) for t in range(50) for s in range(8)]
        keys_b = [b.key(t, s) for t in range(50) for s in range(8)]
        assert keys_a == keys_b

    def test_seeded_tiebreak_permutes_same_timestamp_order(self):
        def order_for(tie):
            loop = make_loop(tie_break=tie)
            log = []

            def task(name):
                yield Delay(10)
                log.append(name)

            for name in "abcdefgh":
                loop.spawn(task(name), name=name)
            loop.run()
            return log

        fifo = order_for(FifoTieBreak())
        assert fifo == list("abcdefgh")
        seeded = {tuple(order_for(SeededTieBreak(seed))) for seed in range(8)}
        # Every seed yields a legal order; at least one differs from FIFO.
        assert any(tuple(fifo) != order for order in seeded)
        for order in seeded:
            assert sorted(order) == sorted(fifo)

    def test_seed_must_be_int(self):
        with pytest.raises(SchedulerError):
            SeededTieBreak("entropy")
