"""Golden determinism for the async engine: same seed, same bytes.

Two runs of the identical (workload seed, tie-break seed, queue depth)
configuration must produce byte-identical metrics JSON and identical
trace rings — at QD 1, 4 and 32, on both device kinds.  This is the
regression net under the scheduler: any hidden iteration-order or
id()-keyed nondeterminism in the loop shows up here first.
"""

import pytest

from repro.nvme.engine import AsyncNVMeEngine
from repro.sched.core import SeededTieBreak

from tests.conftest import make_regular_ssd, make_timessd
from tests.sched.conftest import run_rings

MAKERS = {"regular": make_regular_ssd, "timessd": make_timessd}


def run_once(kind, queue_depth, seed):
    ssd = MAKERS[kind](tracing=True)
    engine = AsyncNVMeEngine(
        ssd, queue_depth=queue_depth, tie_break=SeededTieBreak(seed)
    )
    engine.install_daemons()
    run_rings(
        engine,
        seed,
        rings=4,
        ring_size=28,
        span=ssd.logical_pages // 3,
        gap_us=30_000,
    )
    return (
        ssd.obs.metrics.to_json(indent=2),
        ssd.obs.trace.drain(),
        ssd.obs.trace.dropped,
    )


class TestGoldenAcrossQueueDepths:
    @pytest.mark.parametrize("kind", sorted(MAKERS))
    @pytest.mark.parametrize("queue_depth", [1, 4, 32])
    def test_two_runs_byte_identical(self, kind, queue_depth):
        first = run_once(kind, queue_depth, seed=7)
        second = run_once(kind, queue_depth, seed=7)
        assert first[0] == second[0]  # metrics JSON, byte-for-byte
        assert first[1] == second[1]  # full trace ring incl. sched events
        assert first[2] == second[2]  # dropped count

    def test_sched_events_present_in_trace(self):
        _metrics, events, _dropped = run_once("timessd", 4, seed=7)
        categories = {event["cat"] for event in events}
        assert "sched" in categories

    def test_different_workload_seeds_diverge(self):
        assert run_once("regular", 4, seed=1)[0] != run_once(
            "regular", 4, seed=2
        )[0]
