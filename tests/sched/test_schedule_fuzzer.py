"""Seeded schedule fuzzer: permuted tie-breaking vs a differential oracle.

Each seed drives the *same* ring workload through a RegularSSD and a
TimeSSD, with :class:`SeededTieBreak` permuting every same-timestamp
scheduling decision (slot-worker wakeups, daemon ticks).  Because rings
never alias an LBA, every schedule the loop can produce must agree
with the plain-dict model:

* read-your-writes inside every ring (checked as rings drain),
* final device contents == model on both devices,
* both devices return identical per-command status streams,
* the retention floor is never violated no matter where the expiry
  daemon's shrinks landed in the schedule.
"""

import pytest

from repro.nvme.engine import AsyncNVMeEngine
from repro.sched.core import SeededTieBreak

from tests.conftest import make_regular_ssd, make_timessd
from tests.sched.conftest import readback, run_rings

SEEDS = range(20)
#: Seeds 20-49 run only under ``-m slow`` (nightly / local soak); the
#: CI smoke keeps the original 20 so wall-clock stays flat.
EXTENDED_SEEDS = range(20, 50)
RETENTION_FLOOR_US = 10**4


def fuzz_device(ssd, seed):
    engine = AsyncNVMeEngine(
        ssd,
        queue_depth=1 + seed % 8,
        queue_pairs=1 + seed % 2,
        tie_break=SeededTieBreak(seed),
    )
    engine.install_daemons(retention_target_us=10 * RETENTION_FLOOR_US)
    span = ssd.logical_pages // 3
    model, statuses = run_rings(
        engine, seed, rings=6, ring_size=24, span=span, gap_us=40_000
    )
    final = readback(engine, model)
    return model, statuses, final


@pytest.mark.parametrize("seed", SEEDS)
def test_differential_oracle_across_schedules(seed):
    regular, timessd = make_regular_ssd(), make_timessd(
        retention_floor_us=RETENTION_FLOOR_US
    )
    # Identical LBA span so both devices see the identical command
    # sequence regardless of their over-provisioning split.
    span_guard = min(regular.logical_pages, timessd.logical_pages) // 3
    outputs = []
    for ssd in (regular, timessd):
        assert ssd.logical_pages // 3 >= span_guard
        model, statuses, final = fuzz_device(ssd, seed)
        # Oracle 1: final contents equal the model exactly.
        assert final == model
        outputs.append((model, statuses))
    # Oracle 2: both devices agree command-for-command.
    assert outputs[0][0] == outputs[1][0]
    assert outputs[0][1] == outputs[1][1]
    # Oracle 3: however the schedule interleaved expiry, the floor held.
    shrinks = timessd.metrics_snapshot()["counters"][
        "timessd.retention.shrinks"
    ]
    if shrinks:
        assert timessd.retention_window_us() >= RETENTION_FLOOR_US


@pytest.mark.slow
@pytest.mark.parametrize("seed", EXTENDED_SEEDS)
def test_differential_oracle_extended_seeds(seed):
    test_differential_oracle_across_schedules(seed)


def test_distinct_seeds_explore_distinct_schedules():
    # The fuzzer is useless if every seed replays the FIFO order; event
    # counts are schedule-dependent (daemon wakeups vs worker wakeups at
    # equal timestamps), so require at least two seeds to disagree on
    # the dispatch trace shape.
    signatures = set()
    for seed in range(8):
        ssd = make_timessd(retention_floor_us=RETENTION_FLOOR_US)
        engine = AsyncNVMeEngine(
            ssd, queue_depth=6, tie_break=SeededTieBreak(seed)
        )
        engine.install_daemons()
        run_rings(engine, 99, rings=3, ring_size=24,
                  span=ssd.logical_pages // 3, gap_us=25_000)
        signatures.add(
            (
                engine.completion_log()[0][0],
                tuple(cid for cid, _s, _t in engine.completion_log()[:12]),
            )
        )
    assert len(signatures) > 1
