"""The event-driven NVMe engine: overlap, ordering, and QD=1 equivalence."""

import json

import pytest

from repro.nvme.commands import NVMeCommand, Opcode, StatusCode
from repro.nvme.driver import HostNVMeDriver
from repro.nvme.engine import AsyncNVMeEngine
from repro.sched.core import SeededTieBreak

from tests.conftest import make_regular_ssd, make_timessd


def write_cmds(count, stride=1, start=0):
    return [
        NVMeCommand(Opcode.WRITE, slba=(start + i * stride), nlb=1)
        for i in range(count)
    ]


def strip_engine_gauges(snapshot):
    """Engine-only gauges exist only on the async path; drop them when
    comparing against a synchronous run."""
    gauges = {
        name: value
        for name, value in snapshot["gauges"].items()
        if not name.startswith("nvme.engine.")
    }
    out = dict(snapshot)
    out["gauges"] = gauges
    return out


class TestOutOfOrderCompletion:
    def test_short_read_completes_before_long_write(self):
        ssd = make_regular_ssd()
        engine = AsyncNVMeEngine(ssd, queue_depth=2)
        # Seed lba 9 so the read hits mapped flash.
        engine.process([NVMeCommand(Opcode.WRITE, slba=9, nlb=1)])
        engine.process(
            [
                NVMeCommand(Opcode.WRITE, slba=0, nlb=1),  # cid 1: ~program_us
                NVMeCommand(Opcode.READ, slba=9, nlb=1),  # cid 2: ~read_us
            ]
        )
        log = engine.completion_log()
        order = [cid for cid, _status, _t in log]
        # cid 2 (read) posts before cid 1 (write): genuine out-of-order.
        assert order.index(2) < order.index(1)
        post_times = {cid: t for cid, _status, t in log}
        assert post_times[2] < post_times[1]

    def test_results_still_return_in_submission_order(self):
        ssd = make_regular_ssd()
        engine = AsyncNVMeEngine(ssd, queue_depth=4)
        payloads = [b"p%d" % i for i in range(16)]
        engine.process(
            [
                NVMeCommand(Opcode.WRITE, slba=i, nlb=1, data=[payloads[i]])
                for i in range(16)
            ]
        )
        completions, _ = engine.process(
            [NVMeCommand(Opcode.READ, slba=i, nlb=1) for i in range(16)]
        )
        assert [c.result[0] for c in completions] == payloads

    def test_inflight_overlap_at_depth(self):
        ssd = make_regular_ssd()
        engine = AsyncNVMeEngine(ssd, queue_depth=4)
        engine.process(write_cmds(64))
        assert engine.inflight_max >= 2

    def test_multi_queue_pairs_round_robin(self):
        ssd = make_regular_ssd()
        engine = AsyncNVMeEngine(ssd, queue_depth=2, queue_pairs=2)
        completions, _ = engine.process(write_cmds(32))
        assert len(completions) == 32
        assert all(c.ok for c in completions)
        assert all(pair.submitted == 16 for pair in engine.pairs)
        assert all(pair.posted == 16 for pair in engine.pairs)


class TestStatusMapping:
    def test_out_of_range_and_invalid_commands(self):
        ssd = make_regular_ssd()
        engine = AsyncNVMeEngine(ssd, queue_depth=4)
        completions, _ = engine.process(
            [
                NVMeCommand(Opcode.WRITE, slba=0, nlb=1),
                NVMeCommand(Opcode.READ, slba=ssd.logical_pages, nlb=1),
                NVMeCommand(Opcode.FLUSH),  # host-serial; not queueable
                NVMeCommand(Opcode.WRITE, slba=0, nlb=0),
            ]
        )
        assert [c.status for c in completions] == [
            StatusCode.SUCCESS,
            StatusCode.LBA_OUT_OF_RANGE,
            StatusCode.INVALID_OPCODE,
            StatusCode.INVALID_FIELD,
        ]

    def test_failed_command_does_not_advance_time(self):
        ssd = make_regular_ssd()
        engine = AsyncNVMeEngine(ssd, queue_depth=1)
        before = ssd.clock.now_us
        _, elapsed = engine.process(
            [NVMeCommand(Opcode.READ, slba=ssd.logical_pages + 5, nlb=1)]
        )
        assert elapsed == 0
        assert ssd.clock.now_us == before

    def test_engine_rejects_degenerate_shapes(self):
        ssd = make_regular_ssd()
        with pytest.raises(ValueError):
            AsyncNVMeEngine(ssd, queue_depth=0)
        with pytest.raises(ValueError):
            AsyncNVMeEngine(ssd, queue_pairs=0)


class TestQD1MatchesSynchronousBatch:
    @pytest.mark.parametrize("maker", [make_regular_ssd, make_timessd])
    def test_same_elapsed_statuses_and_metrics(self, maker):
        def workload():
            cmds = []
            for i in range(150):
                cmds.append(NVMeCommand(Opcode.WRITE, slba=i % 48, nlb=2))
            for i in range(40):
                cmds.append(NVMeCommand(Opcode.READ, slba=i, nlb=1))
            cmds.append(NVMeCommand(Opcode.DSM, slba=0, nlb=4))
            return cmds

        sync_ssd, async_ssd = maker(), maker()
        sync_out = HostNVMeDriver(sync_ssd).submit_batch(
            workload(), queue_depth=1
        )
        async_out = HostNVMeDriver(async_ssd).submit_async(
            workload(), queue_depth=1
        )
        assert sync_out[1] == async_out[1]  # elapsed_us
        assert [c.status for c in sync_out[0]] == [
            c.status for c in async_out[0]
        ]
        sync_snap = strip_engine_gauges(sync_ssd.metrics_snapshot())
        async_snap = strip_engine_gauges(async_ssd.metrics_snapshot())
        assert json.dumps(sync_snap, sort_keys=True) == json.dumps(
            async_snap, sort_keys=True
        )


class TestBackgroundDaemons:
    def test_daemons_install_once_and_interleave(self):
        ssd = make_timessd()
        engine = AsyncNVMeEngine(ssd, queue_depth=4)
        first = engine.install_daemons(retention_target_us=10**12)
        assert first
        assert engine.install_daemons() is first  # idempotent
        completions, _ = engine.process(write_cmds(96, stride=1))
        assert all(c.ok for c in completions)
        # Daemon wakeups dispatched alongside the I/O events: strictly
        # more events than the per-command and per-worker minimum.
        assert engine.loop.events_dispatched > 96 + engine.loop.tasks_spawned

    def test_background_daemons_relieve_pool_pressure(self):
        # Sustained overwrite churn with idle gaps between rings: the
        # clock only moves while the loop runs, and both bloom-segment
        # rolls and retention expiry age in device time.  A short floor
        # lets history expire instead of filling the device.
        ssd = make_timessd(retention_floor_us=10**4)
        engine = AsyncNVMeEngine(ssd, queue_depth=4)
        engine.install_daemons(retention_target_us=10**5)
        for _round in range(30):
            completions, _ = engine.process(
                [
                    NVMeCommand(Opcode.WRITE, slba=i % 256, nlb=1)
                    for i in range(128)
                ]
            )
            assert all(c.ok for c in completions)
            ssd.clock.advance(300_000)
        snap = ssd.metrics_snapshot()
        # The daemons did real work: background GC rounds ran, the
        # expiry task shrank the retention window, and the device
        # survived 15x-capacity churn with its free pool intact.
        assert snap["counters"]["gc.background_runs"] > 0
        assert snap["counters"]["timessd.retention.shrinks"] > 0
        assert ssd.block_manager.free_block_count > 0

    def test_tie_break_changes_schedule_not_results(self):
        results = []
        for seed in (3, 11):
            ssd = make_timessd()
            engine = AsyncNVMeEngine(
                ssd, queue_depth=8, tie_break=SeededTieBreak(seed)
            )
            engine.install_daemons()
            engine.process(write_cmds(64))
            completions, _ = engine.process(
                [NVMeCommand(Opcode.READ, slba=i, nlb=1) for i in range(64)]
            )
            results.append([c.result[0] for c in completions])
        assert results[0] == results[1]
