"""Physics invariants of the overlapped request path.

Once requests genuinely overlap, the busy-time accounting has sharper
bounds than the synchronous path: total lane-busy time must stay
*strictly* under elapsed x lanes (perfect saturation of every lane at
every instant is unreachable with real command gaps), concurrency must
actually happen at depth, and histograms must stay internally
consistent under any interleaving.
"""

import pytest

from repro.nvme.commands import NVMeCommand, Opcode
from repro.nvme.engine import AsyncNVMeEngine

from tests.conftest import make_regular_ssd, make_timessd


def churn(ssd, queue_depth, commands=256, span=None):
    engine = AsyncNVMeEngine(ssd, queue_depth=queue_depth)
    span = span if span is not None else ssd.logical_pages // 2
    completions, elapsed = engine.process(
        [
            NVMeCommand(Opcode.WRITE, slba=i % span, nlb=1)
            for i in range(commands)
        ]
    )
    assert all(c.ok for c in completions)
    return engine, elapsed


class TestBusyTimeBounds:
    @pytest.mark.parametrize("maker", [make_regular_ssd, make_timessd])
    def test_busy_strictly_under_elapsed_times_lanes(self, maker):
        # Chip timelines carry the cell-op occupancy (the default
        # zero-cost bus folds channel time into them).  The stream mixes
        # reads into the writes: uneven command costs end the lanes at
        # different times, so sustained perfect saturation of every lane
        # is impossible and the bound is strict.
        ssd = maker()
        engine = AsyncNVMeEngine(ssd, queue_depth=8)
        span = ssd.logical_pages // 2
        commands = [
            NVMeCommand(
                Opcode.READ if i % 3 == 2 else Opcode.WRITE,
                slba=(i * 7) % span if i % 3 == 2 else i % span,
                nlb=1,
            )
            for i in range(256)
        ]
        completions, _ = engine.process(commands)
        assert all(c.ok for c in completions)
        snap = ssd.metrics_snapshot()
        elapsed = snap["gauges"]["sim.now_us"]
        lanes = sum(
            1 for name in snap["gauges"] if name.startswith("flash.chip_busy_us.")
        )
        assert elapsed > 0 and lanes > 0
        assert 0 < snap["gauges"]["flash.chip_busy_us_total"] < elapsed * lanes
        for name, value in snap["gauges"].items():
            if name.startswith("flash.chip_busy_us."):
                assert 0 <= value <= elapsed

    def test_overlap_beats_any_single_lane(self):
        # At depth, elapsed must be less than the single-channel serial
        # cost of the same command stream - the throughput *is* the
        # overlap.
        ssd = make_regular_ssd()
        _engine, elapsed = churn(ssd, queue_depth=8, commands=256)
        serial_cost = 256 * ssd.device.timing.program_us
        assert elapsed < serial_cost


class TestRealConcurrency:
    @pytest.mark.parametrize("queue_depth", [4, 8])
    def test_inflight_reaches_depth(self, queue_depth):
        ssd = make_regular_ssd()
        engine, _ = churn(ssd, queue_depth=queue_depth)
        assert engine.inflight_max == queue_depth
        snap = ssd.metrics_snapshot()
        assert snap["gauges"]["nvme.engine.inflight_max"] == queue_depth

    def test_channel_queues_actually_deepen(self):
        ssd = make_regular_ssd()
        churn(ssd, queue_depth=8)
        snap = ssd.metrics_snapshot()
        assert snap["gauges"]["flash.qdepth_max"] >= 2

    def test_qd1_has_no_overlap(self):
        ssd = make_regular_ssd()
        engine, _ = churn(ssd, queue_depth=1)
        assert engine.inflight_max == 1


class TestHistogramConsistencyUnderOverlap:
    @pytest.mark.parametrize("maker", [make_regular_ssd, make_timessd])
    def test_counts_equal_bucket_sums(self, maker):
        ssd = maker()
        churn(ssd, queue_depth=8)
        snap = ssd.metrics_snapshot()
        assert snap["histograms"]
        for name, hist in snap["histograms"].items():
            bucket_sum = sum(count for _low, count in hist["buckets"])
            assert hist["count"] == bucket_sum, name
