"""Shared helpers for the scheduler/async-engine tests.

The ring workload generator is deliberately *order-insensitive within a
ring*: every ring touches each LBA at most once, so any legal
interleaving of the ring's commands (any tie-break seed) must produce
the same logical device state.  That is what lets the schedule fuzzer
use a plain dict as its differential oracle.
"""

import random

from repro.nvme.commands import NVMeCommand, Opcode


def page_payload(seed, ring, lba):
    """Deterministic page content tagging (seed, ring, lba)."""
    return b"s%d/r%d/l%d" % (seed, ring, lba)


def build_ring(rng, seed, ring, span, size, model):
    """One submission ring plus its expected effect on ``model``.

    LBAs are drawn from ``range(span)`` without replacement, so within
    a ring no two commands alias and any completion order yields the
    same final state.  Returns ``(commands, checks)``: ``checks`` pairs
    READ command indices with their LBA, to be verified against the
    *pre-ring* model.
    """
    lbas = rng.sample(range(span), min(size, span))
    commands = []
    checks = []
    for lba in lbas:
        choice = rng.random()
        if choice < 0.55 or ring == 0:
            payload = page_payload(seed, ring, lba)
            commands.append(
                NVMeCommand(Opcode.WRITE, slba=lba, nlb=1, data=[payload])
            )
            model[lba] = payload
        elif choice < 0.85:
            commands.append(NVMeCommand(Opcode.READ, slba=lba, nlb=1))
            checks.append((len(commands) - 1, lba))
        else:
            commands.append(NVMeCommand(Opcode.DSM, slba=lba, nlb=1))
            model[lba] = None
    return commands, checks


def run_rings(engine, seed, rings, ring_size, span, gap_us=0, model=None):
    """Drive ``rings`` rings through ``engine``, asserting read-your-
    writes as each ring drains.

    Returns ``(model, statuses)``: the final expected device contents
    and the flat per-command status-name list (submission order), for
    differential comparison across devices.
    """
    if model is None:
        model = {}
    statuses = []
    rng = random.Random(seed)
    for ring in range(rings):
        before = dict(model)
        commands, checks = build_ring(rng, seed, ring, span, ring_size, model)
        completions, _elapsed = engine.process(commands)
        statuses.extend(c.status.name for c in completions)
        for index, lba in checks:
            completion = completions[index]
            assert completion.ok, (seed, ring, lba, completion.status)
            assert completion.result[0] == before.get(lba), (seed, ring, lba)
        if gap_us:
            engine.ssd.clock.advance(gap_us)
    return model, statuses


def readback(engine, model, chunk=64):
    """Read every modeled LBA back through the engine; returns
    ``{lba: page}`` in model-key order."""
    lbas = sorted(model)
    seen = {}
    for base in range(0, len(lbas), chunk):
        batch = lbas[base:base + chunk]
        completions, _ = engine.process(
            [NVMeCommand(Opcode.READ, slba=lba, nlb=1) for lba in batch]
        )
        for lba, completion in zip(batch, completions):
            assert completion.ok, (lba, completion.status)
            seen[lba] = completion.result[0]
    return seen
