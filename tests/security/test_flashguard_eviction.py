"""FlashGuard retention-queue eviction under space pressure."""

import random

import pytest

from repro.ftl.ssd import SSDConfig
from repro.security import FlashGuardSSD

from tests.conftest import small_geometry


def make_flashguard(**overrides):
    params = dict(geometry=small_geometry(blocks_per_plane=32))
    params.update(overrides)
    return FlashGuardSSD(SSDConfig(**params))


def read_then_overwrite_churn(ssd, working, writes, seed=6):
    """Worst case for FlashGuard: every page is read before overwrite."""
    rng = random.Random(seed)
    for lpa in range(working):
        ssd.write(lpa, b"v0-%d" % lpa)
    for _ in range(writes):
        lpa = rng.randrange(working)
        ssd.read(lpa)
        ssd.write(lpa, b"v-%d-%d" % (lpa, ssd.clock.now_us))
        ssd.clock.advance(500)


def test_eviction_keeps_device_alive():
    ssd = make_flashguard()
    # Far more retained pages than the device could ever hold.
    read_then_overwrite_churn(ssd, ssd.logical_pages // 2, 6000)
    assert ssd.retained_count >= 0
    assert ssd.block_manager.free_block_count > 0


def test_eviction_drops_oldest_first():
    ssd = make_flashguard()
    ssd.write(1, b"ancient")
    ssd.read(1)
    ssd.clock.advance(100)
    ssd.write(1, b"newer")  # retains "ancient"
    ssd.read(1)
    ssd.clock.advance(100)
    ssd.write(1, b"newest")  # retains "newer"
    assert ssd.retained_count == 2
    assert ssd._evict_oldest_retained(fraction=0.5)
    remaining = [
        v for v in ssd._versions_by_lpa.get(1, []) if not v.evicted
    ]
    assert len(remaining) == 1
    # The older version went first.
    restored, _ = ssd.recover_lpas([1], ssd.clock.now_us, write_back=False)
    assert restored[1] == b"newer"


def test_eviction_with_empty_queue_reports_failure():
    ssd = make_flashguard()
    assert not ssd._evict_oldest_retained(fraction=0.5)


def test_retained_version_survives_many_migrations():
    ssd = make_flashguard()
    ssd.write(2, b"keep-me")
    t_clean = ssd.clock.now_us
    ssd.read(2)
    ssd.write(2, b"cipher")
    rng = random.Random(9)
    working = ssd.logical_pages // 2
    # Massive churn elsewhere forces repeated GC migrations.
    for _ in range(working * 6):
        ssd.write(rng.randrange(3, working), b"noise")
        ssd.clock.advance(200)
    restored, _ = ssd.recover_lpas([2], t_clean, write_back=False)
    # Either still retained (and byte-exact) or honestly evicted.
    if 2 in restored:
        assert restored[2] == b"keep-me"
