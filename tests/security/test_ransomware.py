import pytest

from repro.common.units import SECOND_US
from repro.fs import PlainFS
from repro.security import (
    RANSOMWARE_FAMILIES,
    RansomwareAttack,
    RansomwareDefense,
    RansomwareProfile,
)
from repro.timessd.config import ContentMode, TimeSSDConfig
from repro.timessd.ssd import TimeSSD

from tests.conftest import small_geometry


def make_victim_fs(nfiles=12, pages_per_file=3):
    ssd = TimeSSD(
        TimeSSDConfig(
            geometry=small_geometry(blocks_per_plane=96),
            content_mode=ContentMode.REAL,
            retention_floor_us=3600 * SECOND_US,
        )
    )
    fs = PlainFS(ssd)
    originals = {}
    for i in range(nfiles):
        name = "doc%02d" % i
        fs.create(name)
        payload = ("original-%02d" % i).encode() * 10
        fs.write(name, 0, payload.ljust(pages_per_file * fs.page_size, b"\x01"))
        originals[name] = fs.read(name, 0, fs.file_size(name))
        ssd.clock.advance(5000)
    ssd.clock.advance(SECOND_US)
    return fs, originals


class TestProfiles:
    def test_thirteen_families(self):
        assert len(RANSOMWARE_FAMILIES) == 13

    def test_patterns_valid(self):
        for profile in RANSOMWARE_FAMILIES.values():
            assert profile.pattern in ("overwrite", "delete_rewrite")
            assert profile.files_per_minute > 0
            assert 0 < profile.target_fraction <= 1

    def test_bad_pattern_rejected(self):
        with pytest.raises(ValueError):
            RansomwareProfile("bad", 10, 0.5, "weird")


class TestAttack:
    def test_overwrite_attack_encrypts_in_place(self):
        fs, originals = make_victim_fs()
        attack = RansomwareAttack(fs, RANSOMWARE_FAMILIES["Petya"], seed=1)
        report = attack.execute()
        assert report.encrypted_files
        for name in report.encrypted_files:
            assert fs.read(name, 0, 64) != originals[name][:64]

    def test_delete_rewrite_attack_replaces_files(self):
        fs, _originals = make_victim_fs()
        attack = RansomwareAttack(fs, RANSOMWARE_FAMILIES["Locky"], seed=1)
        report = attack.execute()
        for name in report.encrypted_files:
            assert not fs.exists(name)
            assert fs.exists(name + ".locked")

    def test_attack_duration_tracks_speed(self):
        fast_fs, _ = make_victim_fs()
        slow_fs, _ = make_victim_fs()
        fast = RansomwareAttack(fast_fs, RANSOMWARE_FAMILIES["Petya"], seed=1).execute()
        slow = RansomwareAttack(
            slow_fs, RANSOMWARE_FAMILIES["Stampado"], seed=1
        ).execute()
        per_file_fast = fast.duration_us / len(fast.encrypted_files)
        per_file_slow = slow.duration_us / len(slow.encrypted_files)
        assert per_file_slow > per_file_fast


class TestTimeSSDRecovery:
    @pytest.mark.parametrize("family", ["Petya", "JigSaw", "Locky", "Cerber"])
    def test_full_recovery(self, family):
        fs, originals = make_victim_fs()
        attack = RansomwareAttack(fs, RANSOMWARE_FAMILIES[family], seed=2)
        report = attack.execute()
        defense = RansomwareDefense(fs)
        outcome = defense.recover_with_timekits(report)
        assert outcome.files_failed == 0
        assert outcome.files_recovered == len(report.encrypted_files)
        assert outcome.elapsed_us > 0
        for name in report.encrypted_files:
            recovered = fs.read(name, 0, len(originals[name]))
            assert recovered == originals[name], "file %s not restored" % name
