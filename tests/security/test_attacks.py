"""§3.10 attacks on the retention mechanism itself."""

import pytest

from repro.common.units import DAY_US, HOUR_US, SECOND_US
from repro.security.attacks import (
    JunkFloodAttack,
    RollbackWipeAttack,
    SlowDribbleAttack,
)
from repro.timessd.config import ContentMode

from tests.conftest import make_timessd, small_geometry


def protected_device(floor_us=3 * DAY_US):
    """A device holding a few protected pages written at t_clean."""
    ssd = make_timessd(
        geometry=small_geometry(blocks_per_plane=32),
        content_mode=ContentMode.REAL,
        retention_floor_us=floor_us,
        bloom_segment_max_age_us=HOUR_US,
    )
    protected = {}
    for lpa in range(8):
        payload = (b"precious-%d" % lpa).ljust(ssd.device.geometry.page_size, b"\x05")
        ssd.write(lpa, payload)
        protected[lpa] = payload
        ssd.clock.advance(1000)
    t_clean = ssd.clock.now_us
    ssd.clock.advance(SECOND_US)
    return ssd, protected, t_clean


class TestJunkFlood:
    def test_device_alarms_before_history_is_lost(self):
        ssd, protected, t_clean = protected_device()
        outcome = JunkFloodAttack(ssd, seed=1).execute(protected, t_clean)
        # The flood hits the wall inside the floor window...
        assert outcome.device_alarmed
        assert outcome.attack_duration_us < ssd.config.retention_floor_us
        # ...and the protected history is still retrievable.
        assert outcome.history_survived

    def test_flood_is_loud_and_fast(self):
        ssd, protected, t_clean = protected_device()
        outcome = JunkFloodAttack(ssd, seed=1).execute(protected, t_clean)
        # "The SSD will quickly become full... easily observed by users":
        # the alarm fires after at most ~the device's raw capacity of junk.
        assert outcome.junk_pages_written < 3 * ssd.device.geometry.total_pages


class TestSlowDribble:
    def test_slow_junk_does_not_erase_history_quickly(self):
        ssd, protected, t_clean = protected_device()
        outcome = SlowDribbleAttack(ssd, seed=2).execute(
            protected, t_clean, pages=1500
        )
        # A slow attacker neither alarms the device nor reaches the
        # protected history — retention simply stays long: the window
        # still covers essentially the whole (12-hour) attack.
        assert not outcome.device_alarmed
        assert outcome.history_survived
        assert ssd.retention_window_us() >= 0.9 * outcome.attack_duration_us


class TestRollbackWipe:
    def test_recovery_api_cannot_destroy_history(self):
        ssd, protected, t_clean = protected_device()
        outcome = RollbackWipeAttack(ssd, seed=3).execute(protected, t_clean)
        # Either the device alarmed during the wipe, or the history is
        # still there — rollbacks are writes, not erasure.
        assert outcome.device_alarmed
        assert outcome.history_survived
