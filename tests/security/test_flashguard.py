import pytest

from repro.common.units import SECOND_US
from repro.fs import PlainFS
from repro.ftl.ssd import SSDConfig
from repro.security import FlashGuardSSD, RANSOMWARE_FAMILIES, RansomwareAttack, RansomwareDefense

from tests.conftest import small_geometry


def make_flashguard():
    return FlashGuardSSD(SSDConfig(geometry=small_geometry(blocks_per_plane=96)))


class TestRetentionRule:
    def test_read_then_overwrite_is_retained(self):
        ssd = make_flashguard()
        ssd.write(5, b"secret")
        ssd.read(5)
        ssd.clock.advance(100)
        ssd.write(5, b"cipher")
        assert ssd.retained_count == 1

    def test_overwrite_without_read_not_retained(self):
        ssd = make_flashguard()
        ssd.write(5, b"v1")
        ssd.clock.advance(100)
        ssd.write(5, b"v2")
        assert ssd.retained_count == 0

    def test_read_flag_cleared_by_write(self):
        ssd = make_flashguard()
        ssd.write(5, b"v1")
        ssd.read(5)
        ssd.write(5, b"v2")  # retains v1
        ssd.clock.advance(10)
        ssd.write(5, b"v3")  # v2 never read -> not retained
        assert ssd.retained_count == 1


class TestRecovery:
    def test_recover_restores_read_then_overwritten_page(self):
        ssd = make_flashguard()
        ssd.write(5, b"plaintext")
        t_clean = ssd.clock.now_us
        ssd.clock.advance(1000)
        ssd.read(5)
        ssd.write(5, b"ciphertext")
        restored, elapsed = ssd.recover_lpas([5], t_clean)
        assert restored[5] == b"plaintext"
        assert ssd.read(5)[0] == b"plaintext"
        assert elapsed > 0

    def test_recover_survives_gc(self):
        import random

        ssd = make_flashguard()
        ssd.write(5, b"plaintext")
        t_clean = ssd.clock.now_us
        ssd.clock.advance(10)
        ssd.read(5)
        ssd.write(5, b"cipher")
        # Churn other LPAs to force GC over the retained page's block.
        rng = random.Random(1)
        working = ssd.logical_pages // 2
        for _ in range(working * 4):
            ssd.write(rng.randrange(6, working))
            ssd.clock.advance(50)
        assert ssd.gc_runs > 0
        restored, _ = ssd.recover_lpas([5], t_clean)
        assert restored.get(5) == b"plaintext"

    def test_unretained_lpa_not_restored(self):
        ssd = make_flashguard()
        ssd.write(5, b"v1")
        ssd.write(5, b"v2")
        restored, _ = ssd.recover_lpas([5], ssd.clock.now_us)
        assert 5 not in restored

    def test_write_back_false_reads_only(self):
        ssd = make_flashguard()
        ssd.write(5, b"old")
        t = ssd.clock.now_us
        ssd.read(5)
        ssd.write(5, b"new")
        restored, _ = ssd.recover_lpas([5], t, write_back=False)
        assert restored[5] == b"old"
        assert ssd.read(5)[0] == b"new"


class TestDefenseComparison:
    def test_flashguard_recovers_ransomware_attack(self):
        ssd = make_flashguard()
        fs = PlainFS(ssd)
        originals = {}
        for i in range(10):
            name = "f%02d" % i
            fs.create(name)
            payload = (b"orig%02d" % i) * 20
            fs.write(name, 0, payload.ljust(fs.page_size, b"\x02"))
            originals[name] = fs.read(name, 0, fs.file_size(name))
            ssd.clock.advance(5000)
        ssd.clock.advance(SECOND_US)
        attack = RansomwareAttack(fs, RANSOMWARE_FAMILIES["CryptoWall"], seed=3)
        report = attack.execute()
        defense = RansomwareDefense(fs)
        outcome = defense.recover_with_flashguard(report)
        assert outcome.files_recovered == len(report.encrypted_files)
        for name in report.encrypted_files:
            assert fs.read(name, 0, len(originals[name])) == originals[name]
