import pytest

from repro.common.clock import SimClock


def test_starts_at_zero_by_default():
    assert SimClock().now_us == 0


def test_starts_at_given_time():
    assert SimClock(123).now_us == 123


def test_rejects_negative_start():
    with pytest.raises(ValueError):
        SimClock(-1)


def test_advance_moves_forward():
    clock = SimClock()
    assert clock.advance(10) == 10
    assert clock.advance(5) == 15
    assert clock.now_us == 15


def test_advance_rejects_negative_delta():
    with pytest.raises(ValueError):
        SimClock().advance(-1)


def test_advance_to_future():
    clock = SimClock(100)
    clock.advance_to(250)
    assert clock.now_us == 250


def test_advance_to_past_is_noop():
    clock = SimClock(100)
    clock.advance_to(50)
    assert clock.now_us == 100


def test_advance_zero_is_allowed():
    clock = SimClock(7)
    clock.advance(0)
    assert clock.now_us == 7


def test_repr_mentions_time():
    assert "SimClock" in repr(SimClock(42))
    assert "42 us" in repr(SimClock(42))


@pytest.mark.parametrize("bad", [1.5, 2.0, "10", None, True])
def test_advance_rejects_non_int_delta(bad):
    with pytest.raises(TypeError, match="integer microseconds"):
        SimClock().advance(bad)


def test_init_rejects_non_int_start():
    with pytest.raises(TypeError, match="integer microseconds"):
        SimClock(1.5)


def test_assert_monotonic_passes_and_returns_now():
    clock = SimClock()
    assert clock.assert_monotonic() == 0
    clock.advance(10)
    assert clock.assert_monotonic() == 10
    assert clock.assert_monotonic("again") == 10


def test_assert_monotonic_detects_rewind():
    clock = SimClock(100)
    clock.assert_monotonic()
    clock._now_us = 50  # simulate a bug poking internal state
    with pytest.raises(AssertionError, match="moved backwards"):
        clock.assert_monotonic("checkpoint-3")
