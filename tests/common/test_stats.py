import math
import random

import pytest
from hypothesis import given, strategies as st

from repro.common.stats import LatencyStats, RunningMean


class TestRunningMean:
    def test_empty(self):
        rm = RunningMean()
        assert rm.count == 0
        assert rm.mean == 0.0
        assert rm.variance == 0.0

    def test_single_value(self):
        rm = RunningMean()
        rm.add(5.0)
        assert rm.mean == 5.0
        assert rm.variance == 0.0

    def test_matches_batch_mean(self):
        values = [1.0, 2.0, 3.5, -4.0, 10.0]
        rm = RunningMean()
        for v in values:
            rm.add(v)
        assert rm.mean == pytest.approx(sum(values) / len(values))

    def test_matches_batch_variance(self):
        rng = random.Random(11)
        values = [rng.gauss(10, 3) for _ in range(500)]
        rm = RunningMean()
        for v in values:
            rm.add(v)
        mean = sum(values) / len(values)
        var = sum((v - mean) ** 2 for v in values) / (len(values) - 1)
        assert rm.variance == pytest.approx(var, rel=1e-9)
        assert rm.stdev == pytest.approx(math.sqrt(var), rel=1e-9)

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1))
    def test_mean_within_bounds(self, values):
        rm = RunningMean()
        for v in values:
            rm.add(v)
        assert min(values) - 1e-6 <= rm.mean <= max(values) + 1e-6


class TestLatencyStats:
    def test_empty(self):
        ls = LatencyStats()
        assert ls.count == 0
        assert ls.mean_us == 0.0
        assert ls.percentile(50) == 0.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            LatencyStats().record(-1)

    def test_mean_and_max(self):
        ls = LatencyStats()
        for v in (10, 20, 30):
            ls.record(v)
        assert ls.mean_us == pytest.approx(20)
        assert ls.max_us == 30
        assert ls.total_us == 60

    def test_percentiles_ordered(self):
        ls = LatencyStats()
        for v in range(1000):
            ls.record(v)
        assert ls.percentile(10) <= ls.percentile(50) <= ls.percentile(99)

    def test_percentile_bounds_checked(self):
        ls = LatencyStats()
        ls.record(5)
        with pytest.raises(ValueError):
            ls.percentile(101)
        with pytest.raises(ValueError):
            ls.percentile(-1)

    def test_reservoir_with_rng_does_not_grow(self):
        ls = LatencyStats(rng=random.Random(3))
        for v in range(LatencyStats.RESERVOIR_SIZE * 2):
            ls.record(v)
        assert len(ls._reservoir) == LatencyStats.RESERVOIR_SIZE
        assert ls.count == LatencyStats.RESERVOIR_SIZE * 2
