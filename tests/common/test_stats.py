import math
import random

import pytest
from hypothesis import given, strategies as st

from repro.common.stats import LatencyStats, RunningMean


def make_stats(seed=3):
    return LatencyStats(rng=random.Random(seed))


class TestRunningMean:
    def test_empty(self):
        rm = RunningMean()
        assert rm.count == 0
        assert rm.mean == 0.0
        assert rm.variance == 0.0

    def test_single_value(self):
        rm = RunningMean()
        rm.add(5.0)
        assert rm.mean == 5.0
        assert rm.variance == 0.0

    def test_matches_batch_mean(self):
        values = [1.0, 2.0, 3.5, -4.0, 10.0]
        rm = RunningMean()
        for v in values:
            rm.add(v)
        assert rm.mean == pytest.approx(sum(values) / len(values))

    def test_matches_batch_variance(self):
        rng = random.Random(11)
        values = [rng.gauss(10, 3) for _ in range(500)]
        rm = RunningMean()
        for v in values:
            rm.add(v)
        mean = sum(values) / len(values)
        var = sum((v - mean) ** 2 for v in values) / (len(values) - 1)
        assert rm.variance == pytest.approx(var, rel=1e-9)
        assert rm.stdev == pytest.approx(math.sqrt(var), rel=1e-9)

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1))
    def test_mean_within_bounds(self, values):
        rm = RunningMean()
        for v in values:
            rm.add(v)
        assert min(values) - 1e-6 <= rm.mean <= max(values) + 1e-6


class TestLatencyStats:
    def test_empty(self):
        ls = make_stats()
        assert ls.count == 0
        assert ls.mean_us == 0.0
        assert ls.percentile(50) == 0.0
        assert ls.percentile(0) == 0.0
        assert ls.percentile(100) == 0.0

    def test_rng_is_mandatory(self):
        with pytest.raises(TypeError):
            LatencyStats()  # almanac: ignore[determinism-latencystats-rng]
        with pytest.raises(ValueError):
            LatencyStats(rng=None)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            make_stats().record(-1)

    def test_mean_and_max(self):
        ls = make_stats()
        for v in (10, 20, 30):
            ls.record(v)
        assert ls.mean_us == pytest.approx(20)
        assert ls.max_us == 30
        assert ls.min_us == 10
        assert ls.total_us == 60

    def test_single_sample_percentiles(self):
        ls = make_stats()
        ls.record(42)
        for p in (0, 1, 50, 99, 100):
            assert ls.percentile(p) == 42.0

    def test_p0_and_p100_are_exact_extremes(self):
        ls = make_stats()
        for v in (7, 3, 99, 12):
            ls.record(v)
        assert ls.percentile(0) == 3.0
        assert ls.percentile(100) == 99.0

    def test_p100_exact_after_reservoir_eviction(self):
        # Evictions can push the true max/min out of the reservoir; the
        # extremes must still come from the exact side-channel.
        ls = make_stats(seed=5)
        ls.record(10**9)  # true max, recorded first
        ls.record(0)  # true min
        for v in range(LatencyStats.RESERVOIR_SIZE * 3):
            ls.record(v % 1000 + 1)
        assert ls.percentile(100) == float(10**9)
        assert ls.percentile(0) == 0.0
        assert ls.max_us == 10**9
        assert ls.min_us == 0

    def test_percentile_interpolates(self):
        ls = make_stats()
        ls.record(0)
        ls.record(100)
        assert ls.percentile(50) == pytest.approx(50.0)
        assert ls.percentile(25) == pytest.approx(25.0)

    def test_percentiles_ordered(self):
        ls = make_stats()
        for v in range(1000):
            ls.record(v)
        assert ls.percentile(10) <= ls.percentile(50) <= ls.percentile(99)

    def test_percentile_bounds_checked(self):
        ls = make_stats()
        ls.record(5)
        with pytest.raises(ValueError):
            ls.percentile(101)
        with pytest.raises(ValueError):
            ls.percentile(-1)

    def test_reservoir_does_not_grow(self):
        ls = make_stats()
        for v in range(LatencyStats.RESERVOIR_SIZE * 2):
            ls.record(v)
        assert len(ls._reservoir) == LatencyStats.RESERVOIR_SIZE
        assert ls.count == LatencyStats.RESERVOIR_SIZE * 2

    def test_same_seed_same_percentiles(self):
        def run():
            ls = make_stats(seed=9)
            rng = random.Random(1)
            for _ in range(LatencyStats.RESERVOIR_SIZE + 500):
                ls.record(rng.randrange(10**6))
            return [ls.percentile(p) for p in (0, 25, 50, 90, 99, 100)]

        assert run() == run()

    @given(st.lists(st.integers(min_value=0, max_value=10**6), min_size=1, max_size=200))
    def test_percentiles_within_range(self, values):
        ls = make_stats()
        for v in values:
            ls.record(v)
        for p in (0, 10, 50, 90, 100):
            assert min(values) <= ls.percentile(p) <= max(values)
