import pytest

from repro.common.units import (
    DAY_US,
    GIB,
    HOUR_US,
    KIB,
    MIB,
    MINUTE_US,
    MS_US,
    SECOND_US,
    format_bytes,
    format_duration,
)


def test_size_constants_are_consistent():
    assert MIB == 1024 * KIB
    assert GIB == 1024 * MIB


def test_time_constants_are_consistent():
    assert SECOND_US == 1000 * MS_US
    assert MINUTE_US == 60 * SECOND_US
    assert HOUR_US == 60 * MINUTE_US
    assert DAY_US == 24 * HOUR_US


@pytest.mark.parametrize(
    "n,expected",
    [
        (0, "0 B"),
        (512, "512 B"),
        (KIB, "1.00 KiB"),
        (3 * MIB, "3.00 MiB"),
        (2 * GIB, "2.00 GiB"),
    ],
)
def test_format_bytes(n, expected):
    assert format_bytes(n) == expected


def test_format_bytes_rejects_negative():
    with pytest.raises(ValueError):
        format_bytes(-1)


@pytest.mark.parametrize(
    "us,expected",
    [
        (0, "0 us"),
        (999, "999 us"),
        (MS_US, "1.000 ms"),
        (SECOND_US, "1.000 s"),
        (90 * MINUTE_US, "1.50 h"),
        (36 * HOUR_US, "1.50 days"),
    ],
)
def test_format_duration(us, expected):
    assert format_duration(us) == expected


def test_format_duration_rejects_negative():
    with pytest.raises(ValueError):
        format_duration(-5)
