from repro.common.errors import (
    AddressError,
    DeviceFullError,
    FileSystemError,
    FlashStateError,
    QueryError,
    ReproError,
    RetentionViolationError,
)


def test_hierarchy():
    for cls in (
        AddressError,
        DeviceFullError,
        FlashStateError,
        QueryError,
        FileSystemError,
    ):
        assert issubclass(cls, ReproError)
    # The retention alarm is a species of "device full".
    assert issubclass(RetentionViolationError, DeviceFullError)


def test_retention_violation_carries_context():
    err = RetentionViolationError("stop", oldest_retained_us=5, floor_us=10)
    assert err.oldest_retained_us == 5
    assert err.floor_us == 10
    assert "stop" in str(err)


def test_retention_violation_context_optional():
    err = RetentionViolationError("stop")
    assert err.oldest_retained_us is None
    assert err.floor_us is None
