import pytest

from repro.cli import EXPERIMENTS, build_parser, main


def test_demo_runs(capsys):
    assert main(["demo"]) == 0
    out = capsys.readouterr().out
    assert "history" in out
    assert "after rollback to t=0: first draft" in out


def test_list_shows_all_ids(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for key in EXPERIMENTS:
        assert key in out


def test_info_shows_defaults(capsys):
    assert main(["info"]) == 0
    out = capsys.readouterr().out
    assert "retention floor: 3.00 days" in out
    assert "bloom" in out


def test_unknown_experiment_id(capsys):
    assert main(["experiment", "fig99"]) == 2


def test_experiment_runs_small(capsys):
    assert main(["experiment", "fig7a", "--days", "2"]) == 0
    out = capsys.readouterr().out
    assert "TimeSSD WA" in out
    assert "webusers" in out


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_selftest_passes(capsys):
    assert main(["selftest"]) == 0
    out = capsys.readouterr().out
    assert "all invariants hold" in out


def test_trace_stats_synthetic(capsys):
    assert main(["trace-stats", "fiu:webmail", "--days", "2", "--scale", "30"]) == 0
    out = capsys.readouterr().out
    assert "write ratio" in out


def test_trace_stats_file(tmp_path, capsys):
    from repro.workloads.io import save_trace_csv
    from repro.workloads.msr import msr_trace

    path = str(tmp_path / "t.csv")
    save_trace_csv(list(msr_trace("hm", 2048, days=1, seed=1, intensity_scale=30)), path)
    assert main(["trace-stats", path]) == 0
    assert "native trace" in capsys.readouterr().out
