"""Every example script runs cleanly end-to-end."""

import runpy
import sys

import pytest

EXAMPLES = [
    "examples/quickstart.py",
    "examples/ransomware_recovery.py",
    "examples/forensic_timeline.py",
    "examples/file_time_machine.py",
    "examples/nvme_tour.py",
    "examples/firmware_resilience.py",
    "examples/fault_drill.py",
]


@pytest.mark.parametrize("path", EXAMPLES)
def test_example_runs(path, capsys):
    runpy.run_path(path, run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), "%s produced no output" % path
    assert "Traceback" not in out


def test_quickstart_rolls_back(capsys):
    runpy.run_path("examples/quickstart.py", run_name="__main__")
    out = capsys.readouterr().out
    assert "'draft two'" in out


def test_ransomware_example_verifies(capsys):
    runpy.run_path("examples/ransomware_recovery.py", run_name="__main__")
    out = capsys.readouterr().out
    assert "byte-exact restoration: yes" in out


def test_file_time_machine_verifies(capsys):
    runpy.run_path("examples/file_time_machine.py", run_name="__main__")
    out = capsys.readouterr().out
    assert out.count("verified: yes") == 3


def test_fault_drill_recovers_and_rolls_back(capsys):
    runpy.run_path("examples/fault_drill.py", run_name="__main__")
    out = capsys.readouterr().out
    assert "torn pages discarded" in out
    assert "self-audit" in out and "clean" in out
    assert "byte-exact rollback: yes" in out
    assert "ERROR" not in out


def test_firmware_resilience_example(capsys):
    runpy.run_path("examples/firmware_resilience.py", run_name="__main__")
    out = capsys.readouterr().out
    assert "clean" in out
    assert "history while locked" in out
    assert "ERROR" not in out
