import pytest

from repro.common.errors import FlashStateError
from repro.flash.device import FlashDevice
from repro.flash.page import NULL_PPA, OOBMetadata, PageState
from repro.flash.timing import FlashTiming

from tests.conftest import small_geometry


@pytest.fixture
def device():
    return FlashDevice(small_geometry(), FlashTiming())


def oob(lpa=0):
    return OOBMetadata(lpa=lpa, back_pointer=NULL_PPA, timestamp_us=0)


def test_program_then_read_roundtrip(device):
    complete = device.program_page(0, b"hello", oob(lpa=9), now_us=0)
    assert complete == device.timing.program_us
    result = device.read_page(0, now_us=complete)
    assert result.data == b"hello"
    assert result.oob.lpa == 9
    assert result.complete_us == complete + device.timing.read_us


def test_counters_track_operations(device):
    device.program_page(0, b"x", oob())
    device.read_page(0)
    device.erase_block(0)
    c = device.counters
    assert (c.page_programs, c.page_reads, c.block_erases) == (1, 1, 1)


def test_program_out_of_order_within_block_rejected(device):
    with pytest.raises(FlashStateError):
        device.program_page(1, b"x", oob())  # page 0 not yet programmed


def test_erase_enables_reprogramming(device):
    device.program_page(0, b"x", oob())
    device.erase_block(0)
    device.program_page(0, b"y", oob())
    assert device.read_page(0).data == b"y"


def test_read_erased_page_rejected(device):
    with pytest.raises(FlashStateError):
        device.read_page(0)


def test_ops_on_same_channel_serialize(device):
    geo = device.geometry
    # Block 0 and block `channels` share channel 0.
    pba_a, pba_b = 0, geo.channels
    ppa_a = geo.first_page_of_block(pba_a)
    ppa_b = geo.first_page_of_block(pba_b)
    t1 = device.program_page(ppa_a, b"a", oob(), now_us=0)
    t2 = device.program_page(ppa_b, b"b", oob(), now_us=0)
    assert t2 == t1 + device.timing.program_us


def test_ops_on_distinct_channels_overlap(device):
    geo = device.geometry
    ppa_a = geo.first_page_of_block(0)  # channel 0
    ppa_b = geo.first_page_of_block(1)  # channel 1
    t1 = device.program_page(ppa_a, b"a", oob(), now_us=0)
    t2 = device.program_page(ppa_b, b"b", oob(), now_us=0)
    assert t1 == t2 == device.timing.program_us


def test_peek_page_has_no_cost(device):
    device.program_page(0, b"x", oob())
    before = device.counters.page_reads
    page = device.peek_page(0)
    assert page.state is PageState.PROGRAMMED
    assert device.counters.page_reads == before


def test_block_erase_counts_roundtrip(device):
    device.program_page(0, b"x", oob())
    device.erase_block(0)
    counts = device.block_erase_counts()
    assert counts[0] == 1
    assert sum(counts) == 1
