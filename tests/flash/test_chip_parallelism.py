"""Die-level parallelism: chip cell time overlaps channel bus time."""

import pytest

from repro.flash.device import FlashDevice
from repro.flash.geometry import FlashGeometry
from repro.flash.page import NULL_PPA, OOBMetadata
from repro.flash.timing import FlashTiming


def oob(lpa=0):
    return OOBMetadata(lpa=lpa, back_pointer=NULL_PPA, timestamp_us=0)


def multi_chip_device(chips=2, bus_us=40):
    geometry = FlashGeometry(
        channels=2, chips_per_channel=chips, blocks_per_plane=8, pages_per_block=8
    )
    return FlashDevice(geometry, FlashTiming(bus_transfer_us=bus_us))


def blocks_on(device, channel, chip):
    geo = device.geometry
    return [
        pba
        for pba in range(geo.total_blocks)
        if geo.chip_of_block(pba) == (channel, chip)
    ]


def test_default_model_unchanged():
    """bus=0, one chip per channel: identical to the single-resource model."""
    device = FlashDevice(
        FlashGeometry(channels=2, blocks_per_plane=8, pages_per_block=8)
    )
    t1 = device.program_page(0, b"a", oob(), now_us=0)
    assert t1 == device.timing.program_us
    result = device.read_page(0, now_us=t1)
    assert result.complete_us == t1 + device.timing.read_us


def test_programs_on_sibling_chips_overlap():
    device = multi_chip_device()
    timing = device.timing
    geo = device.geometry
    block_a = blocks_on(device, 0, 0)[0]
    block_b = blocks_on(device, 0, 1)[0]
    t_a = device.program_page(geo.first_page_of_block(block_a), b"a", oob(), 0)
    t_b = device.program_page(geo.first_page_of_block(block_b), b"b", oob(), 0)
    # Second transfer waits for the first (shared bus), but its cell
    # program overlaps chip A's — far better than full serialization.
    assert t_a == timing.bus_transfer_us + timing.program_us
    assert t_b == 2 * timing.bus_transfer_us + timing.program_us
    assert t_b < t_a + timing.program_us


def test_programs_on_same_chip_serialize():
    device = multi_chip_device()
    timing = device.timing
    geo = device.geometry
    block = blocks_on(device, 0, 0)[0]
    first = geo.first_page_of_block(block)
    t1 = device.program_page(first, b"a", oob(), 0)
    t2 = device.program_page(first + 1, b"b", oob(), 0)
    assert t2 >= t1 + timing.program_us


def test_erase_leaves_channel_free():
    device = multi_chip_device()
    geo = device.geometry
    block_a = blocks_on(device, 0, 0)[0]
    block_b = blocks_on(device, 0, 1)[0]
    device.program_page(geo.first_page_of_block(block_a), b"a", oob(), 0)
    erase_done = device.erase_block(block_a, now_us=10_000)
    # While chip 0 erases, chip 1 on the same channel reads freely.
    device.program_page(geo.first_page_of_block(block_b), b"b", oob(), 0)
    result = device.read_page(geo.first_page_of_block(block_b), now_us=10_000)
    assert result.complete_us < erase_done


def test_reads_pipeline_across_chips():
    device = multi_chip_device(bus_us=40)
    timing = device.timing
    geo = device.geometry
    pages = []
    for chip in (0, 1):
        block = blocks_on(device, 0, chip)[0]
        ppa = geo.first_page_of_block(block)
        device.program_page(ppa, b"x", oob(), 0)
        pages.append(ppa)
    start = 100_000
    t1 = device.read_page(pages[0], start).complete_us
    t2 = device.read_page(pages[1], start).complete_us
    serialized = start + 2 * (timing.read_us + timing.bus_transfer_us)
    assert max(t1, t2) < serialized  # cell sense overlapped
