import pytest

from repro.common.errors import FlashStateError
from repro.flash.block import Block
from repro.flash.page import NULL_PPA, OOBMetadata, PageState


def oob(lpa=1, ts=0):
    return OOBMetadata(lpa=lpa, back_pointer=NULL_PPA, timestamp_us=ts)


def test_new_block_is_erased():
    block = Block(0, 8)
    assert block.is_erased
    assert not block.is_full
    assert block.write_pointer == 0


def test_sequential_program_and_read():
    block = Block(0, 4)
    for i in range(4):
        block.program(i, b"data%d" % i, oob(lpa=i))
    assert block.is_full
    data, meta = block.read(2)
    assert data == b"data2"
    assert meta.lpa == 2


def test_out_of_order_program_rejected():
    block = Block(0, 4)
    with pytest.raises(FlashStateError):
        block.program(1, b"x", oob())


def test_double_program_rejected():
    block = Block(0, 4)
    block.program(0, b"x", oob())
    with pytest.raises(FlashStateError):
        block.program(0, b"y", oob())


def test_read_of_erased_page_rejected():
    block = Block(0, 4)
    with pytest.raises(FlashStateError):
        block.read(0)


def test_erase_resets_everything_and_counts_wear():
    block = Block(0, 4)
    for i in range(4):
        block.program(i, b"d", oob())
    block.erase()
    assert block.erase_count == 1
    assert block.is_erased
    assert all(p.state is PageState.ERASED for p in block.pages)
    assert all(p.data is None for p in block.pages)
    # Programmable again from offset 0.
    block.program(0, b"again", oob())
    assert block.read(0)[0] == b"again"


def test_multiple_erases_accumulate():
    block = Block(0, 2)
    for _ in range(5):
        block.program(0, b"d", oob())
        block.erase()
    assert block.erase_count == 5
