import pytest
from hypothesis import given, strategies as st

from repro.common.errors import AddressError
from repro.flash.geometry import FlashGeometry

from tests.conftest import small_geometry


def test_totals():
    geo = small_geometry()
    assert geo.total_blocks == 4 * 16
    assert geo.total_pages == 4 * 16 * 16
    assert geo.raw_capacity_bytes == geo.total_pages * 512


def test_rejects_nonpositive_dimensions():
    with pytest.raises(ValueError):
        FlashGeometry(channels=0)
    with pytest.raises(ValueError):
        FlashGeometry(page_size=-1)


def test_block_page_roundtrip():
    geo = small_geometry()
    for ppa in (0, 1, geo.pages_per_block - 1, geo.pages_per_block, geo.total_pages - 1):
        pba = geo.block_of_page(ppa)
        offset = geo.page_offset(ppa)
        assert geo.first_page_of_block(pba) + offset == ppa


def test_ppa_bounds():
    geo = small_geometry()
    with pytest.raises(AddressError):
        geo.check_ppa(-1)
    with pytest.raises(AddressError):
        geo.check_ppa(geo.total_pages)


def test_pba_bounds():
    geo = small_geometry()
    with pytest.raises(AddressError):
        geo.check_pba(geo.total_blocks)


def test_pages_of_block_covers_block():
    geo = small_geometry()
    pages = list(geo.pages_of_block(3))
    assert len(pages) == geo.pages_per_block
    assert all(geo.block_of_page(p) == 3 for p in pages)


def test_channel_striping_round_robin():
    geo = small_geometry()
    for pba in range(geo.total_blocks):
        assert geo.channel_of_block(pba) == pba % geo.channels


def test_channel_of_page_follows_block():
    geo = small_geometry()
    for ppa in range(0, geo.total_pages, 7):
        assert geo.channel_of_page(ppa) == geo.channel_of_block(geo.block_of_page(ppa))


def test_chip_decomposition_in_range():
    geo = small_geometry(chips_per_channel=2)
    for pba in range(geo.total_blocks):
        channel, chip = geo.chip_of_block(pba)
        assert 0 <= channel < geo.channels
        assert 0 <= chip < geo.chips_per_channel


@given(
    channels=st.integers(1, 8),
    blocks=st.integers(1, 32),
    pages=st.integers(1, 32),
)
def test_address_arithmetic_total_consistency(channels, blocks, pages):
    geo = FlashGeometry(
        channels=channels,
        blocks_per_plane=blocks,
        pages_per_block=pages,
        page_size=256,
    )
    seen = set()
    for pba in range(geo.total_blocks):
        for ppa in geo.pages_of_block(pba):
            assert ppa not in seen
            seen.add(ppa)
    assert len(seen) == geo.total_pages
