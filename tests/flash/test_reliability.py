"""Bit errors and ECC: corrected silently, uncorrectable loudly."""

import pytest

from repro.flash import FlashGeometry, FlashReliability, UncorrectableReadError
from repro.flash.device import FlashDevice
from repro.flash.page import NULL_PPA, OOBMetadata
from repro.flash.reliability import ReliabilityEngine

from tests.conftest import make_regular_ssd


def oob(lpa=0):
    return OOBMetadata(lpa=lpa, back_pointer=NULL_PPA, timestamp_us=0)


def make_device(**reliability):
    geometry = FlashGeometry(channels=2, blocks_per_plane=8, pages_per_block=8, page_size=4096)
    return FlashDevice(geometry, reliability=FlashReliability(**reliability))


class TestModelValidation:
    def test_rejects_negative_rates(self):
        with pytest.raises(ValueError):
            FlashReliability(raw_bit_error_rate=-1)
        with pytest.raises(ValueError):
            FlashReliability(ecc_correctable_bits=-1)

    def test_disabled_by_default(self):
        device = FlashDevice()
        assert device.reliability is None


class TestECC:
    def test_low_ber_is_always_corrected(self):
        # ~0.3 expected errors per read, budget 40: corrections happen,
        # failures effectively never.
        device = make_device(raw_bit_error_rate=1e-5, ecc_correctable_bits=40)
        device.program_page(0, b"x", oob())
        for _ in range(2000):
            assert device.read_page(0).data == b"x"
        engine = device.reliability
        assert engine.corrected_reads > 0
        assert engine.uncorrectable_reads == 0

    def test_extreme_ber_fails_reads(self):
        device = make_device(raw_bit_error_rate=1e-2, ecc_correctable_bits=8)
        device.program_page(0, b"x", oob())
        with pytest.raises(UncorrectableReadError) as excinfo:
            for _ in range(50):
                device.read_page(0)
        assert excinfo.value.bit_errors > 8
        assert device.reliability.uncorrectable_reads >= 1

    def test_wear_raises_error_rate(self):
        model = FlashReliability(
            raw_bit_error_rate=2e-6, wear_ber_multiplier=1.0, ecc_correctable_bits=10**9
        )
        engine_fresh = ReliabilityEngine(model, 4096)
        engine_worn = ReliabilityEngine(model, 4096)
        fresh = sum(engine_fresh.check_read(0, erase_count=0) for _ in range(3000))
        worn = sum(engine_worn.check_read(0, erase_count=50) for _ in range(3000))
        assert worn > 3 * fresh

    def test_poisson_sampler_sane(self):
        engine = ReliabilityEngine(
            FlashReliability(raw_bit_error_rate=1.0, ecc_correctable_bits=10**9), 1
        )
        # lambda = 8 bits * 1.0: mean of samples near 8.
        samples = [engine._poisson(8.0) for _ in range(4000)]
        mean = sum(samples) / len(samples)
        assert 7.0 < mean < 9.0
        assert all(s >= 0 for s in samples)

    def test_large_lambda_uses_normal_approximation(self):
        engine = ReliabilityEngine(
            FlashReliability(raw_bit_error_rate=1.0, ecc_correctable_bits=10**9), 1
        )
        samples = [engine._poisson(500.0) for _ in range(500)]
        mean = sum(samples) / len(samples)
        assert 450 < mean < 550


class TestSSDIntegration:
    def test_ssd_with_reliable_flash_just_works(self):
        ssd = make_regular_ssd(
            reliability=FlashReliability(raw_bit_error_rate=1e-6)
        )
        for lpa in range(100):
            ssd.write(lpa, b"payload-%d" % lpa)
        for lpa in range(100):
            assert ssd.read(lpa)[0] == b"payload-%d" % lpa

    def test_end_of_life_surfaces_to_host(self):
        ssd = make_regular_ssd(
            reliability=FlashReliability(
                raw_bit_error_rate=5e-3, ecc_correctable_bits=4
            )
        )
        ssd.write(0, b"doomed")
        with pytest.raises(UncorrectableReadError):
            for _ in range(200):
                ssd.read(0)
