"""Time-aware error model: retention age, read disturb, retry ladder.

Complements tests/flash/test_reliability.py (which pins the wear term
and the Poisson sampler): these tests cover the ISSUE 7 aging terms and
their plumbing through the device — per-page ``programmed_us`` retention
clocks, per-block ``reads_since_erase`` disturb accumulators (reset on
erase), and the ``retry_step`` BER attenuation the read-retry ladder
relies on.
"""

import pytest

from repro.common.units import HOUR_US
from repro.flash.device import FlashDevice
from repro.flash.geometry import FlashGeometry
from repro.flash.page import NULL_PPA, OOBMetadata
from repro.flash.reliability import (
    FlashReliability,
    ReliabilityEngine,
    UncorrectableReadError,
)

GEO = FlashGeometry(
    channels=1,
    chips_per_channel=1,
    planes_per_chip=1,
    blocks_per_plane=4,
    pages_per_block=4,
    page_size=512,
)


def make_device(**model_overrides):
    params = dict(raw_bit_error_rate=1e-4, ecc_correctable_bits=40)
    params.update(model_overrides)
    return FlashDevice(GEO, reliability=FlashReliability(**params))


class TestEffectiveBer:
    ENGINE = ReliabilityEngine(
        FlashReliability(
            raw_bit_error_rate=1e-4,
            wear_ber_multiplier=0.01,
            retention_ber_per_hour=0.5,
            read_disturb_ber_per_read=0.001,
            retry_ber_factor=0.5,
        ),
        page_size=512,
    )

    def test_retention_age_raises_the_rate(self):
        fresh = self.ENGINE.effective_ber(erase_count=0, age_us=0)
        aged = self.ENGINE.effective_ber(erase_count=0, age_us=10 * HOUR_US)
        assert aged == pytest.approx(fresh * (1 + 0.5 * 10))

    def test_read_disturb_raises_the_rate(self):
        quiet = self.ENGINE.effective_ber(erase_count=0)
        noisy = self.ENGINE.effective_ber(erase_count=0, block_reads=1000)
        assert noisy == pytest.approx(quiet * (1 + 0.001 * 1000))

    def test_terms_are_additive(self):
        ber = self.ENGINE.effective_ber(
            erase_count=10, age_us=2 * HOUR_US, block_reads=100
        )
        expected = 1e-4 * (1 + 0.01 * 10 + 0.5 * 2 + 0.001 * 100)
        assert ber == pytest.approx(expected)

    def test_retry_step_attenuates_geometrically(self):
        base = self.ENGINE.effective_ber(erase_count=0, age_us=HOUR_US)
        for step in (1, 2, 3):
            stepped = self.ENGINE.effective_ber(
                erase_count=0, age_us=HOUR_US, retry_step=step
            )
            assert stepped == pytest.approx(base * 0.5**step)

    def test_rejects_negative_aging_rates(self):
        with pytest.raises(ValueError):
            FlashReliability(retention_ber_per_hour=-1.0)
        with pytest.raises(ValueError):
            FlashReliability(read_disturb_ber_per_read=-1.0)
        with pytest.raises(ValueError):
            FlashReliability(retry_ber_factor=0.0)
        with pytest.raises(ValueError):
            FlashReliability(retry_ber_factor=1.5)


class TestDevicePlumbing:
    def _program(self, device, ppa, now_us=0):
        data = bytes(GEO.page_size)
        device.program_page(ppa, data, OOBMetadata(lpa=0, back_pointer=NULL_PPA, timestamp_us=now_us), now_us)

    def test_program_stamps_the_retention_clock(self):
        device = make_device()
        self._program(device, 0, now_us=12345)
        assert device.blocks[0].pages[0].programmed_us == 12345

    def test_reads_accumulate_disturb_and_erase_resets_it(self):
        device = make_device()
        self._program(device, 0)
        for _ in range(5):
            device.read_page(0, 0)
        assert device.blocks[0].reads_since_erase == 5
        device.erase_block(0, 0)
        assert device.blocks[0].reads_since_erase == 0

    def test_read_result_surfaces_corrected_bits(self):
        # High-but-correctable BER: some read of a page must correct > 0
        # bits, and the count must be visible on the ReadResult.
        device = make_device(raw_bit_error_rate=2e-3, ecc_correctable_bits=64)
        self._program(device, 0)
        corrected = [device.read_page(0, 0).corrected_bits for _ in range(20)]
        assert any(c > 0 for c in corrected)
        assert all(c >= 0 for c in corrected)

    def test_retention_age_drives_reads_over_the_budget(self):
        device = make_device(
            raw_bit_error_rate=2e-3,
            retention_ber_per_hour=1.0,
            ecc_correctable_bits=8,
        )
        self._program(device, 0, now_us=0)
        # Fresh: correctable.  A month later: far over budget.
        device.read_page(0, 0)
        with pytest.raises(UncorrectableReadError):
            device.read_page(0, 720 * HOUR_US)

    def test_retry_step_rescues_a_marginal_read(self):
        device = make_device(
            raw_bit_error_rate=8e-3,
            ecc_correctable_bits=8,
            retry_ber_factor=0.1,
        )
        self._program(device, 0)
        with pytest.raises(UncorrectableReadError):
            device.read_page(0, 0)
        result = device.read_page(0, 0, retry_step=3)
        assert result.data == bytes(GEO.page_size)

    def test_retry_step_costs_extra_sense_time(self):
        device = make_device(raw_bit_error_rate=1e-9)
        self._program(device, 0)
        # First read absorbs the program's chip occupancy; measure from a
        # quiet timeline.
        t = device.read_page(0, 0).complete_us
        base = device.read_page(0, t).complete_us - t
        start = t + base
        retried = device.read_page(0, start, retry_step=2).complete_us - start
        assert retried == pytest.approx(base * 3, rel=0.25)

    def test_disturb_seen_by_a_read_excludes_itself(self):
        """The N-th read sees N-1 prior senses: retries of a failed read
        must not observe extra disturb from the failure itself."""
        engine_calls = []
        device = make_device()
        original = device.reliability.check_read

        def spy(ppa, erase_count, age_us=0, block_reads=0, retry_step=0):
            engine_calls.append(block_reads)
            return original(ppa, erase_count, age_us, block_reads, retry_step)

        device.reliability.check_read = spy
        self._program(device, 0)
        device.read_page(0, 0)
        device.read_page(0, 0)
        assert engine_calls == [0, 1]


class TestMetricsMirroring:
    def test_ecc_counters_reach_the_metrics_scope(self):
        device = make_device(raw_bit_error_rate=2e-3, ecc_correctable_bits=64)
        data = bytes(GEO.page_size)
        device.program_page(0, data, OOBMetadata(lpa=0, back_pointer=NULL_PPA, timestamp_us=0), 0)
        for _ in range(20):
            device.read_page(0, 0)
        counters = device.obs.metrics.snapshot()["counters"]
        assert counters["flash.ecc.corrected_reads"] > 0
        assert counters["flash.ecc.corrected_bits"] > 0
        assert counters["flash.ecc.uncorrectable_reads"] == 0
        # The engine's instance counters stay in lockstep with the scope.
        engine = device.reliability
        assert engine.corrected_reads == counters["flash.ecc.corrected_reads"]
        assert engine.corrected_bits == counters["flash.ecc.corrected_bits"]
