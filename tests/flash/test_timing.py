import pytest

from repro.common.errors import AddressError
from repro.flash.timing import ChannelTimelines, FlashTiming


def test_default_costs_positive():
    t = FlashTiming()
    assert t.read_us < t.program_us < t.erase_us


def test_rejects_negative_costs():
    with pytest.raises(ValueError):
        FlashTiming(read_us=-1)


class TestChannelTimelines:
    def test_needs_channels(self):
        with pytest.raises(ValueError):
            ChannelTimelines(0)

    def test_schedule_on_idle_channel(self):
        tl = ChannelTimelines(2)
        assert tl.schedule(0, now_us=100, latency_us=50) == 150
        assert tl.busy_until(0) == 150

    def test_back_to_back_ops_queue(self):
        tl = ChannelTimelines(1)
        tl.schedule(0, 0, 100)
        # Second op at t=10 must wait for the first to finish.
        assert tl.schedule(0, 10, 100) == 200

    def test_channels_are_independent(self):
        tl = ChannelTimelines(2)
        tl.schedule(0, 0, 1000)
        assert tl.schedule(1, 0, 100) == 100

    def test_idle_gap_is_not_compressed(self):
        tl = ChannelTimelines(1)
        tl.schedule(0, 0, 10)
        # Arriving later than busy_until starts at arrival time.
        assert tl.schedule(0, 500, 10) == 510

    def test_earliest_free(self):
        tl = ChannelTimelines(3)
        tl.schedule(0, 0, 100)
        tl.schedule(1, 0, 50)
        channel, free_at = tl.earliest_free(now_us=0)
        assert channel == 2
        assert free_at == 0

    def test_all_idle_at(self):
        tl = ChannelTimelines(2)
        assert tl.all_idle_at(0)
        tl.schedule(0, 0, 100)
        assert not tl.all_idle_at(50)
        assert tl.all_idle_at(100)

    def test_bad_channel_rejected(self):
        tl = ChannelTimelines(1)
        with pytest.raises(AddressError):
            tl.schedule(1, 0, 10)

    def test_negative_latency_rejected(self):
        tl = ChannelTimelines(1)
        with pytest.raises(ValueError):
            tl.schedule(0, 0, -1)
