"""Columnar core ≡ the old per-page dataclass model.

PR 8 replaced the ``Page``/``OOBMetadata`` object graph with flat
columns (:mod:`repro.flash.core`); ``Page`` and ``Block`` became views.
These properties drive random operation sequences against the columnar
core *and* a literal reimplementation of the old dataclass model, and
assert every observable — state, data, OOB round-trip, ``intact``,
write pointers, wear counts, error behaviour — stays identical.
"""

import pytest
from array import array

from hypothesis import given, settings, strategies as st

from repro.common.errors import FlashStateError
from repro.flash.block import Block
from repro.flash.core import (
    HAVE_NUMPY,
    ColumnarFlashArray,
    verify_seq_tags,
)
from repro.flash.page import (
    _MASK64,
    NULL_PPA,
    OOBMetadata,
    PageState,
    seq_tag_of,
)

BLOCKS = 3
PPB = 4

i64 = st.integers(min_value=-(1 << 63), max_value=(1 << 63) - 1)


# --- The reference: the pre-PR-8 object model, verbatim semantics ----------


class LegacyPage:
    def __init__(self):
        self.state = PageState.ERASED
        self.data = None
        self.oob = None
        self.programmed_us = 0


class LegacyBlock:
    """The old ``Block`` dataclass behaviour, reimplemented literally."""

    def __init__(self, pages_per_block):
        self.pages = [LegacyPage() for _ in range(pages_per_block)]
        self.erase_count = 0
        self.write_pointer = 0
        self.failed = False

    def program(self, offset, data, oob):
        if offset != self.write_pointer:
            raise FlashStateError("out of order")
        page = self.pages[offset]
        if page.state is not PageState.ERASED:
            raise FlashStateError("not erased")
        page.data = data
        page.oob = oob
        page.state = PageState.PROGRAMMED
        self.write_pointer += 1

    def read(self, offset):
        page = self.pages[offset]
        if page.state is not PageState.PROGRAMMED:
            raise FlashStateError("erased")
        return page.data, page.oob

    def erase(self):
        for page in self.pages:
            page.state = PageState.ERASED
            page.data = None
            page.oob = None
        self.erase_count += 1
        self.write_pointer = 0


# --- Operation sequences ---------------------------------------------------


def ops_strategy():
    program = st.tuples(
        st.just("program"),
        st.integers(0, BLOCKS - 1),
        st.integers(0, PPB - 1),  # offset (may be out of order: must raise)
        st.integers(0, 500),  # lpa
        st.sampled_from([NULL_PPA, 0, 7, OOBMetadata.TRANSLATION_TAG]),
        st.integers(0, 10_000),  # timestamp
        st.booleans(),  # torn?
    )
    erase = st.tuples(st.just("erase"), st.integers(0, BLOCKS - 1))
    read = st.tuples(
        st.just("read"), st.integers(0, BLOCKS - 1), st.integers(0, PPB - 1)
    )
    fail = st.tuples(st.just("fail"), st.integers(0, BLOCKS - 1))
    return st.lists(st.one_of(program, erase, read, fail), max_size=40)


def make_views():
    core = ColumnarFlashArray(BLOCKS, PPB)
    views = [Block(pba, PPB, core=core, index=pba) for pba in range(BLOCKS)]
    return core, views


def assert_equivalent(views, legacy):
    for view, ref in zip(views, legacy):
        assert view.erase_count == ref.erase_count
        assert view.write_pointer == ref.write_pointer
        assert view.failed == ref.failed
        assert view.is_full == (ref.write_pointer == PPB)
        assert view.is_erased == (ref.write_pointer == 0)
        for offset in range(PPB):
            page, ref_page = view.pages[offset], ref.pages[offset]
            assert page.state is ref_page.state
            assert page.data == ref_page.data
            if ref_page.oob is None:
                assert page.oob is None
            else:
                assert page.oob == ref_page.oob
                assert page.oob.intact == ref_page.oob.intact
                assert page.oob.seq_tag == ref_page.oob.seq_tag


@settings(max_examples=60, deadline=None)
@given(ops=ops_strategy())
def test_columnar_matches_legacy_model(ops):
    core, views = make_views()
    legacy = [LegacyBlock(PPB) for _ in range(BLOCKS)]
    for op in ops:
        if op[0] == "program":
            _, pba, offset, lpa, back, ts, torn = op
            oob = OOBMetadata(lpa=lpa, back_pointer=back, timestamp_us=ts)
            if torn:
                oob = oob.as_torn()
            outcomes = []
            for target in (views[pba], legacy[pba]):
                try:
                    target.program(offset, b"d%d" % ts, oob)
                    outcomes.append(None)
                except FlashStateError:
                    outcomes.append("raise")
            assert outcomes[0] == outcomes[1]
        elif op[0] == "erase":
            views[op[1]].erase()
            legacy[op[1]].erase()
        elif op[0] == "read":
            _, pba, offset = op
            outcomes = []
            for target in (views[pba], legacy[pba]):
                try:
                    outcomes.append(target.read(offset))
                except FlashStateError:
                    outcomes.append("raise")
            assert outcomes[0] == outcomes[1]
        elif op[0] == "fail":
            views[op[1]].failed = True
            legacy[op[1]].failed = True
        assert_equivalent(views, legacy)


@settings(max_examples=60, deadline=None)
@given(
    lpa=i64, back=i64, ts=i64, torn=st.booleans(), interval=st.integers(0, 3)
)
def test_oob_round_trip_preserves_intact(lpa, back, ts, torn, interval):
    """Program → read round-trips OOB exactly, torn or not, across erases."""
    core, views = make_views()
    block = views[0]
    for _ in range(interval):  # wear history must not affect OOB round-trip
        block.program(0, b"x", OOBMetadata(lpa=1, back_pointer=-1, timestamp_us=0))
        block.erase()
    oob = OOBMetadata(lpa=lpa, back_pointer=back, timestamp_us=ts)
    assert oob.intact
    if torn:
        oob = oob.as_torn()
        assert not oob.intact
    block.program(0, b"payload", oob)
    _data, got = block.read(0)
    assert got == oob
    assert got.intact == oob.intact
    assert got.seq_tag == oob.seq_tag
    # And the batch path agrees with the scalar path, page by page.
    state, lpas, backs, tss, seqs, _prog = core.page_slice(0)
    flags = verify_seq_tags(lpas, backs, tss, seqs)
    assert list(flags) == [1 if got.intact else 0]


@settings(max_examples=40, deadline=None)
@given(
    rows=st.lists(st.tuples(i64, i64, i64, i64), min_size=1, max_size=64)
)
def test_verify_seq_tags_numpy_matches_pure_python(rows):
    """The vectorized and scalar verifiers are bit-identical."""
    lpas = array("q", [r[0] for r in rows])
    backs = array("q", [r[1] for r in rows])
    tss = array("q", [r[2] for r in rows])
    seqs = array("q", [r[3] for r in rows])
    fast = verify_seq_tags(lpas, backs, tss, seqs)
    slow = verify_seq_tags(list(lpas), list(backs), list(tss), list(seqs))
    assert fast == slow
    for i, row in enumerate(rows):
        expect = seq_tag_of(row[0], row[1], row[2]) == (row[3] & _MASK64)
        assert bool(slow[i]) == expect


@settings(max_examples=40, deadline=None)
@given(lpa=i64, back=i64, ts=i64)
def test_real_tags_always_verify(lpa, back, ts):
    oob = OOBMetadata(lpa=lpa, back_pointer=back, timestamp_us=ts)
    flags = verify_seq_tags(
        [lpa], [back], [ts], [oob.seq_tag - (1 << 64 if oob.seq_tag >> 63 else 0)]
    )
    assert flags == bytearray([1])
    torn = oob.as_torn()
    flags = verify_seq_tags(
        [lpa], [back], [ts], [torn.seq_tag - (1 << 64 if torn.seq_tag >> 63 else 0)]
    )
    assert flags == bytearray([0])


def test_numpy_accelerator_is_present_in_ci():
    # The test extra installs numpy; this guards against silently
    # benchmarking the fallback path. (The fallback itself is covered
    # above by passing plain lists.)
    assert HAVE_NUMPY


def test_page_view_mutations_round_trip():
    """Direct Page-view pokes (faults, tests) behave like the dataclass."""
    core, views = make_views()
    block = views[1]
    oob = OOBMetadata(lpa=9, back_pointer=NULL_PPA, timestamp_us=55)
    block.program(0, b"live", oob)
    page = block.pages[0]
    # Burn it the way faults/hooks.py does: residue data + torn OOB.
    page.data = b"\x00" * 4
    page.oob = page.oob.as_torn()
    assert page.state is PageState.PROGRAMMED
    assert not page.oob.intact
    assert page.oob.lpa == 9
    # Clearing OOB matches the old `page.oob = None`.
    page.oob = None
    assert core.seq_tag[1 * PPB] == 0
    page.state = PageState.ERASED
    assert page.oob is None
    assert block.pages[0].data == b"\x00" * 4  # state, not data, gates reads
    with pytest.raises(FlashStateError):
        block.read(0)
    page.programmed_us = 1234
    assert core.programmed_us[1 * PPB] == 1234


def test_standalone_block_has_private_core():
    a, b = Block(0, PPB), Block(0, PPB)
    a.program(0, b"x", OOBMetadata(lpa=1, back_pointer=-1, timestamp_us=0))
    assert b.is_erased and not a.is_erased
