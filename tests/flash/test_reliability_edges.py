"""ReliabilityEngine edge cases: zero BER, end-of-life wear, determinism."""

import pytest

from repro.flash.reliability import (
    FlashReliability,
    ReliabilityEngine,
    UncorrectableReadError,
)


def engine(page_size=4096, **model):
    return ReliabilityEngine(FlashReliability(**model), page_size)


class TestZeroBER:
    def test_zero_ber_never_errors_at_any_wear(self):
        e = engine(raw_bit_error_rate=0.0, wear_ber_multiplier=5.0)
        assert not e.enabled
        for erase_count in (0, 10**6, 10**9):
            assert e.check_read(0, erase_count) == 0
        assert e.corrected_reads == 0
        assert e.corrected_bits == 0
        assert e.uncorrectable_reads == 0


class TestPastRatedEndurance:
    def test_wear_far_past_endurance_defeats_ecc(self):
        e = engine(
            raw_bit_error_rate=1e-7,
            wear_ber_multiplier=1.0,
            ecc_correctable_bits=40,
        )
        # Fresh block: ~0.003 expected errors per read; nothing escapes ECC.
        for _ in range(100):
            e.check_read(0, 0)
        assert e.uncorrectable_reads == 0
        # A million P/E cycles inflates the BER by 1e6: thousands of bit
        # errors per read, far beyond any ECC budget.
        with pytest.raises(UncorrectableReadError) as excinfo:
            e.check_read(7, 10**6)
        assert excinfo.value.ppa == 7
        assert excinfo.value.bit_errors > 40
        assert e.uncorrectable_reads == 1


class TestDeterminism:
    def test_fixed_seed_replays_identically(self):
        def trace():
            e = engine(
                raw_bit_error_rate=2e-5,
                wear_ber_multiplier=0.1,
                ecc_correctable_bits=10**9,
                seed=0xBEEF,
            )
            counts = [e.check_read(ppa, ppa % 50) for ppa in range(500)]
            return counts, e.corrected_bits, e.corrected_reads

        assert trace() == trace()

    def test_different_seeds_diverge(self):
        a = engine(raw_bit_error_rate=2e-5, ecc_correctable_bits=10**9, seed=1)
        b = engine(raw_bit_error_rate=2e-5, ecc_correctable_bits=10**9, seed=2)
        assert [a.check_read(p, 0) for p in range(500)] != [
            b.check_read(p, 0) for p in range(500)
        ]
