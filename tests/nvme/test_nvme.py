import pytest

from repro.common.units import SECOND_US
from repro.nvme import (
    AdminOpcode,
    HostNVMeDriver,
    NVMeCommand,
    NVMeController,
    Opcode,
    StatusCode,
)
from repro.nvme.driver import NVMeError
from repro.timessd.config import ContentMode

from tests.conftest import make_regular_ssd, make_timessd


@pytest.fixture
def driver():
    ssd = make_timessd(
        content_mode=ContentMode.REAL, retention_floor_us=3600 * SECOND_US
    )
    return HostNVMeDriver(ssd)


def page(ssd_or_driver, text):
    size = (
        ssd_or_driver.controller.ssd.device.geometry.page_size
        if isinstance(ssd_or_driver, HostNVMeDriver)
        else ssd_or_driver.device.geometry.page_size
    )
    return text.encode().ljust(size, b"\0")


class TestStandardIO:
    def test_write_read_roundtrip(self, driver):
        payload = [page(driver, "hello-nvme")]
        driver.write(7, payload)
        assert driver.read(7) == payload

    def test_multi_block_io(self, driver):
        pages = [page(driver, "p%d" % i) for i in range(4)]
        driver.write(10, pages)
        assert driver.read(10, 4) == pages

    def test_trim(self, driver):
        driver.write(3, [page(driver, "x")])
        driver.trim(3)
        assert driver.read(3) == [None]

    def test_flush_succeeds(self, driver):
        driver.flush()

    def test_out_of_range_is_status_not_exception_at_controller(self, driver):
        completion = driver.controller.submit(
            NVMeCommand(Opcode.READ, slba=10**9, nlb=1)
        )
        assert completion.status is StatusCode.LBA_OUT_OF_RANGE

    def test_driver_raises_on_error_status(self, driver):
        with pytest.raises(NVMeError) as excinfo:
            driver.read(10**9)
        assert excinfo.value.status is StatusCode.LBA_OUT_OF_RANGE

    def test_bad_nlb_rejected(self, driver):
        completion = driver.controller.submit(NVMeCommand(Opcode.READ, slba=0, nlb=0))
        assert completion.status is StatusCode.INVALID_FIELD

    def test_unknown_opcode_rejected(self, driver):
        completion = driver.controller.submit(NVMeCommand(opcode=0x55))
        assert completion.status is StatusCode.INVALID_OPCODE


class TestAdmin:
    def test_identify_reports_time_travel(self, driver):
        info = driver.identify()
        assert info.model == "TimeSSD"
        assert info.time_travel
        assert info.logical_pages == driver.controller.ssd.logical_pages

    def test_identify_regular_device(self):
        regular = HostNVMeDriver(make_regular_ssd())
        info = regular.identify()
        assert info.model == "RegularSSD"
        assert not info.time_travel

    def test_smart_log_counters(self, driver):
        driver.write(0, [page(driver, "a")])
        log = driver.smart_log()
        assert log["host_pages_written"] == 1
        assert "write_amplification" in log


class TestVendorCommands:
    def test_addr_query_all_via_nvme(self, driver):
        for text in ("v1", "v2", "v3"):
            driver.write(5, [page(driver, text)])
            driver.controller.ssd.clock.advance(1000)
        chains = driver.addr_query_all(5)
        assert len(chains[5]) == 3

    def test_addr_query_as_of(self, driver):
        driver.write(5, [page(driver, "old")])
        t_old = driver.controller.ssd.clock.now_us
        driver.controller.ssd.clock.advance(1000)
        driver.write(5, [page(driver, "new")])
        picked = driver.addr_query(5, t=t_old)
        assert picked[5].data == page(driver, "old")

    def test_rollback_via_nvme(self, driver):
        driver.write(5, [page(driver, "old")])
        t_old = driver.controller.ssd.clock.now_us
        driver.controller.ssd.clock.advance(1000)
        driver.write(5, [page(driver, "new")])
        driver.rollback(5, t=t_old)
        assert driver.read(5) == [page(driver, "old")]

    def test_time_query_via_nvme(self, driver):
        driver.write(1, [page(driver, "a")])
        mark = driver.controller.ssd.clock.now_us
        driver.controller.ssd.clock.advance(1000)
        driver.write(2, [page(driver, "b")])
        updated = driver.time_query(mark)
        assert 2 in updated and 1 not in updated

    def test_time_query_range_validates_order(self, driver):
        completion = driver.controller.submit(
            NVMeCommand(Opcode.TIME_QUERY_RANGE, t=10, t2=5)
        )
        assert completion.status is StatusCode.INVALID_FIELD

    def test_retention_info(self, driver):
        driver.write(0, [page(driver, "a")])
        driver.write(0, [page(driver, "b")])
        info = driver.retention_info()
        assert info["retained_pages"] == 1
        assert info["retention_floor_us"] == 3600 * SECOND_US

    def test_vendor_opcodes_rejected_on_regular_ssd(self):
        regular = HostNVMeDriver(make_regular_ssd())
        completion = regular.controller.submit(NVMeCommand(Opcode.ADDR_QUERY_ALL))
        assert completion.status is StatusCode.INVALID_OPCODE

    def test_completion_carries_latency(self, driver):
        driver.write(0, [page(driver, "a")])
        completion = driver.controller.submit(NVMeCommand(Opcode.READ, slba=0, nlb=1))
        assert completion.ok
        assert completion.latency_us > 0


class TestRetentionAlarm:
    def test_floor_violation_surfaces_as_vendor_status(self):
        ssd = make_timessd(retention_floor_us=10**15)
        driver = HostNVMeDriver(ssd)
        status = None
        for i in range(50_000):
            completion = driver.controller.submit(
                NVMeCommand(Opcode.WRITE, slba=i % 64, nlb=1, data=[None])
            )
            if not completion.ok:
                status = completion.status
                break
            ssd.clock.advance(100)
        assert status is StatusCode.RETENTION_PROTECTED


class TestBatchedSubmission:
    def _loaded_driver(self):
        ssd = make_timessd()
        driver = HostNVMeDriver(ssd)
        for lpa in range(256):
            ssd.write(lpa)
        return driver

    def test_reads_scale_with_queue_depth(self):
        import random

        driver = self._loaded_driver()
        rng = random.Random(2)
        lpas = [rng.randrange(256) for _ in range(200)]
        elapsed = {}
        for qd in (1, 8):
            commands = [NVMeCommand(Opcode.READ, slba=lpa, nlb=1) for lpa in lpas]
            completions, took = driver.submit_batch(commands, queue_depth=qd)
            assert all(c.ok for c in completions)
            elapsed[qd] = took
        assert elapsed[8] < elapsed[1] / 2  # deep queues exploit channels

    def test_batched_writes_apply_in_order(self):
        driver = self._loaded_driver()
        commands = [
            NVMeCommand(Opcode.WRITE, slba=5, nlb=1, data=[b"first"]),
            NVMeCommand(Opcode.WRITE, slba=5, nlb=1, data=[b"second"]),
        ]
        completions, _ = driver.submit_batch(commands, queue_depth=4)
        assert all(c.ok for c in completions)
        assert driver.read(5) == [b"second"]

    def test_batch_reports_bad_lba(self):
        driver = self._loaded_driver()
        commands = [NVMeCommand(Opcode.READ, slba=10**9, nlb=1)]
        completions, _ = driver.submit_batch(commands)
        assert completions[0].status is StatusCode.LBA_OUT_OF_RANGE

    def test_batch_rejects_vendor_opcodes(self):
        driver = self._loaded_driver()
        completions, _ = driver.submit_batch(
            [NVMeCommand(Opcode.ADDR_QUERY_ALL, slba=0, nlb=1)]
        )
        assert completions[0].status is StatusCode.INVALID_OPCODE

    def test_batch_trim(self):
        driver = self._loaded_driver()
        completions, _ = driver.submit_batch(
            [NVMeCommand(Opcode.DSM, slba=0, nlb=4)]
        )
        assert completions[0].ok
        assert driver.read(0) == [None]
