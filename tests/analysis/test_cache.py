"""The two-tier on-disk result cache."""

import os

from repro.analysis.cache import ResultCache
from repro.analysis.core import SourceModule, Violation


def _module(tmp_path, name="m.py", source="x = 1\n"):
    path = tmp_path / name
    path.write_text(source)
    return SourceModule.from_path(str(path))


def _violation(path):
    return Violation(
        rule_id="hygiene-print", path=path, line=1, col=1, message="boom"
    )


def test_shallow_round_trip_survives_save(tmp_path):
    module = _module(tmp_path)
    cache = ResultCache(str(tmp_path / "cache"), ["hygiene-print"])
    assert cache.lookup_file(module) is None
    cache.store_file(module, [_violation(module.path)], {(1, "*")})
    cache.save()

    fresh = ResultCache(str(tmp_path / "cache"), ["hygiene-print"])
    violations, used = fresh.lookup_file(module)
    assert [v.rule_id for v in violations] == ["hygiene-print"]
    assert used == {(1, "*")}


def test_changed_source_misses(tmp_path):
    module = _module(tmp_path)
    cache = ResultCache(str(tmp_path / "cache"), ["hygiene-print"])
    cache.store_file(module, [], set())
    edited = _module(tmp_path, source="x = 2\n")
    assert cache.lookup_file(edited) is None


def test_rule_selection_changes_signature(tmp_path):
    module = _module(tmp_path)
    cache = ResultCache(str(tmp_path / "cache"), ["hygiene-print"])
    cache.store_file(module, [], set())
    cache.save()
    other = ResultCache(
        str(tmp_path / "cache"), ["hygiene-print", "determinism-wallclock"]
    )
    assert other.signature != cache.signature
    assert other.lookup_file(module) is None


def test_deep_tier_keys_on_whole_tree(tmp_path):
    a = _module(tmp_path, "a.py", "x = 1\n")
    b = _module(tmp_path, "b.py", "y = 2\n")
    cache = ResultCache(str(tmp_path / "cache"), ["effects-recovery-rng"])
    cache.store_deep([a, b], [_violation(a.path)], {a.path: {(3, "*")}})
    cache.save()

    fresh = ResultCache(str(tmp_path / "cache"), ["effects-recovery-rng"])
    violations, used = fresh.lookup_deep([a, b])
    assert [v.path for v in violations] == [a.path]
    assert used == {a.path: {(3, "*")}}
    # Any edit anywhere invalidates the deep entry.
    edited = _module(tmp_path, "b.py", "y = 3\n")
    assert fresh.lookup_deep([a, edited]) is None


def test_save_evicts_entries_not_touched_this_run(tmp_path):
    stale = _module(tmp_path, "stale.py", "s = 0\n")
    kept = _module(tmp_path, "kept.py", "k = 0\n")
    cache = ResultCache(str(tmp_path / "cache"), ["hygiene-print"])
    cache.store_file(stale, [], set())
    cache.store_file(kept, [], set())
    cache.save()

    second = ResultCache(str(tmp_path / "cache"), ["hygiene-print"])
    assert second.lookup_file(kept) is not None
    second.store_file(kept, [], set())
    second.save()

    third = ResultCache(str(tmp_path / "cache"), ["hygiene-print"])
    assert third.lookup_file(stale) is None
    assert third.lookup_file(kept) is not None


def test_corrupt_cache_files_are_ignored(tmp_path):
    module = _module(tmp_path)
    directory = tmp_path / "cache"
    cache = ResultCache(str(directory), ["hygiene-print"])
    cache.store_file(module, [_violation(module.path)], set())
    cache.save()
    for name in os.listdir(str(directory)):
        (directory / name).write_text("{not json")
    fresh = ResultCache(str(directory), ["hygiene-print"])
    assert fresh.lookup_file(module) is None


def test_analyzer_source_change_invalidates_deep_cache(tmp_path, monkeypatch):
    # Editing any analysis source (here a stand-in contracts.py) bumps
    # the analyzer version, so deep results can never be served stale.
    from repro.analysis import cache as cache_mod

    fake = tmp_path / "analysis"
    fake.mkdir()
    (fake / "contracts.py").write_text("CONTRACTS = []\n")
    monkeypatch.setattr(cache_mod, "_ANALYSIS_DIR", str(fake))
    monkeypatch.setattr(cache_mod, "_VERSION_CACHE", [])

    module = _module(tmp_path)
    first = cache_mod.ResultCache(str(tmp_path / "cache"), ["some-rule"])
    first.store_deep([module], [], {})
    first.save()
    warm = cache_mod.ResultCache(str(tmp_path / "cache"), ["some-rule"])
    assert warm.lookup_deep([module]) is not None

    (fake / "contracts.py").write_text("CONTRACTS = ['edited']\n")
    monkeypatch.setattr(cache_mod, "_VERSION_CACHE", [])
    fresh = cache_mod.ResultCache(str(tmp_path / "cache"), ["some-rule"])
    assert fresh.signature != first.signature
    assert fresh.lookup_deep([module]) is None


def test_rule_selection_change_misses_deep_cache(tmp_path):
    module = _module(tmp_path)
    cache = ResultCache(
        str(tmp_path / "cache"), ["concurrency-reentrant-atomic"]
    )
    cache.store_deep([module], [], {})
    cache.save()
    narrow = ResultCache(
        str(tmp_path / "cache"),
        ["concurrency-reentrant-atomic", "concurrency-yield-in-atomic"],
    )
    assert narrow.lookup_deep([module]) is None


def test_cache_counts_hits_and_misses(tmp_path):
    module = _module(tmp_path)
    cache = ResultCache(str(tmp_path / "cache"), ["hygiene-print"])
    assert cache.lookup_file(module) is None
    cache.store_file(module, [], set())
    assert cache.lookup_file(module) is not None
    assert (cache.shallow_hits, cache.shallow_misses) == (1, 1)
    assert cache.lookup_deep([module]) is None
    cache.store_deep([module], [], {})
    assert cache.lookup_deep([module]) is not None
    assert (cache.deep_hits, cache.deep_misses) == (1, 1)
