"""Entry points: ``python -m repro.analysis`` and ``repro lint``."""

import json
import os

from repro.analysis.core import analyze_paths
from repro.analysis.runner import main as lint_main
from repro.cli import main as cli_main

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(__file__)))
SRC_REPRO = os.path.join(REPO_ROOT, "src", "repro")

CLEAN = "from repro.common.units import SECOND_US\nWINDOW_US = 3 * SECOND_US\n"
DIRTY = "import time\n\n\ndef stamp():\n    return time.time()\n"


def test_exit_zero_and_clean_banner_on_clean_file(tmp_path, capsys):
    path = tmp_path / "clean.py"
    path.write_text(CLEAN)
    assert lint_main([str(path)]) == 0
    assert "clean" in capsys.readouterr().out


def test_exit_one_with_rule_id_and_location(tmp_path, capsys):
    path = tmp_path / "dirty.py"
    path.write_text(DIRTY)
    assert lint_main([str(path)]) == 1
    out = capsys.readouterr().out
    assert "dirty.py:5:12" in out
    assert "[determinism-wallclock]" in out
    assert "1 violation" in out


def test_json_format_parses(tmp_path, capsys):
    path = tmp_path / "dirty.py"
    path.write_text(DIRTY)
    assert lint_main([str(path), "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload[0]["rule"] == "determinism-wallclock"
    assert payload[0]["line"] == 5


def test_rules_filter_limits_scope(tmp_path, capsys):
    path = tmp_path / "dirty.py"
    path.write_text(DIRTY + "def f(x=[]):\n    return x\n")
    assert lint_main([str(path), "--rules", "hygiene-mutable-default"]) == 1
    out = capsys.readouterr().out
    assert "hygiene-mutable-default" in out
    assert "determinism-wallclock" not in out


def test_missing_path_is_usage_error(tmp_path, capsys):
    # A typo'd CI invocation must fail loudly, not report a clean run.
    assert lint_main([str(tmp_path / "no_such_dir")]) == 2
    assert "no such file" in capsys.readouterr().err


def test_unknown_rule_is_usage_error(tmp_path, capsys):
    path = tmp_path / "clean.py"
    path.write_text(CLEAN)
    assert lint_main([str(path), "--rules", "bogus"]) == 2
    assert "unknown rule" in capsys.readouterr().err


def test_list_rules_shows_every_pack(capsys):
    assert lint_main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for pack in (
        "determinism",
        "layering",
        "hygiene",
        "callgraph",
        "effects",
        "domains",
    ):
        assert pack in out
    assert "[deep]" in out


def test_repro_lint_subcommand(tmp_path, capsys):
    path = tmp_path / "dirty.py"
    path.write_text(DIRTY)
    assert cli_main(["lint", str(path)]) == 1
    assert "[determinism-wallclock]" in capsys.readouterr().out
    assert cli_main(["lint", "--list-rules"]) == 0
    assert "determinism-wallclock" in capsys.readouterr().out


def test_sarif_format_parses_with_rule_metadata(tmp_path, capsys):
    path = tmp_path / "dirty.py"
    path.write_text(DIRTY)
    assert lint_main([str(path), "--format", "sarif"]) == 1
    log = json.loads(capsys.readouterr().out)
    assert log["version"] == "2.1.0"
    run = log["runs"][0]
    results = run["results"]
    assert results[0]["ruleId"] == "determinism-wallclock"
    region = results[0]["locations"][0]["physicalLocation"]["region"]
    assert region["startLine"] == 5
    declared = {r["id"] for r in run["tool"]["driver"]["rules"]}
    assert "determinism-wallclock" in declared


def test_sarif_clean_run_has_empty_results(tmp_path, capsys):
    path = tmp_path / "clean.py"
    path.write_text(CLEAN)
    assert lint_main([str(path), "--format", "sarif"]) == 0
    assert json.loads(capsys.readouterr().out)["runs"][0]["results"] == []


def test_select_and_ignore_filter_rules(tmp_path, capsys):
    path = tmp_path / "dirty.py"
    path.write_text(DIRTY)
    assert (
        lint_main(
            [
                str(path),
                "--select",
                "determinism",
                "--ignore",
                "determinism-wallclock",
            ]
        )
        == 0
    )
    assert "clean" in capsys.readouterr().out


def test_ignore_drops_whole_pack(tmp_path, capsys):
    path = tmp_path / "dirty.py"
    path.write_text(DIRTY)
    assert lint_main([str(path), "--ignore", "determinism"]) == 0
    capsys.readouterr()


def test_deep_flag_runs_whole_program_passes(tmp_path, capsys):
    pkg = tmp_path / "repro" / "ftl"
    pkg.mkdir(parents=True)
    (tmp_path / "repro" / "__init__.py").write_text("")
    (pkg / "__init__.py").write_text("")
    (pkg / "mapping.py").write_text("def f(lpa, ppa):\n    lpa = ppa\n")
    assert lint_main([str(tmp_path / "repro"), "--no-cache"]) == 0
    capsys.readouterr()
    assert lint_main([str(tmp_path / "repro"), "--deep", "--no-cache"]) == 1
    assert "domains-cross-assign" in capsys.readouterr().out


def test_syntax_error_is_reported_not_raised(tmp_path, capsys):
    path = tmp_path / "broken.py"
    path.write_text("def broken(:\n    pass\n")
    assert lint_main([str(path), "--deep", "--no-cache"]) == 1
    out = capsys.readouterr().out
    assert "[parse-error]" in out


def test_undecodable_file_is_reported_not_raised(tmp_path, capsys):
    path = tmp_path / "binary.py"
    path.write_bytes(b"\xff\xfe\x00junk\x80\x81")
    assert lint_main([str(path), "--deep", "--no-cache"]) == 1
    out = capsys.readouterr().out
    assert "[parse-error]" in out


def test_cache_round_trip_matches_cold_run(tmp_path, capsys):
    path = tmp_path / "dirty.py"
    path.write_text(DIRTY)
    cache_dir = str(tmp_path / "cache")
    assert lint_main([str(path), "--cache-dir", cache_dir]) == 1
    cold = capsys.readouterr().out
    assert os.listdir(cache_dir)
    assert lint_main([str(path), "--cache-dir", cache_dir]) == 1
    assert capsys.readouterr().out == cold


def test_whole_tree_is_clean():
    # The acceptance gate: the shipped tree has zero violations,
    # including the whole-program passes (rules=None selects them all).
    assert analyze_paths([SRC_REPRO]) == []


def test_stats_flag_reports_counts_and_cache(tmp_path, capsys):
    path = tmp_path / "dirty.py"
    path.write_text(DIRTY)
    cache_dir = str(tmp_path / "cache")
    assert lint_main([str(path), "--cache-dir", cache_dir, "--stats"]) == 1
    err = capsys.readouterr().err
    assert "findings by rule:" in err
    assert "determinism-wallclock" in err
    assert "cache shallow: 0 hit / 1 miss" in err
    # Warm run: same selection, unchanged file -> pure hit.
    assert lint_main([str(path), "--cache-dir", cache_dir, "--stats"]) == 1
    err = capsys.readouterr().err
    assert "cache shallow: 1 hit / 0 miss (100% hit)" in err


def test_stats_flag_reports_disabled_cache(tmp_path, capsys):
    path = tmp_path / "clean.py"
    path.write_text(CLEAN)
    assert lint_main([str(path), "--no-cache", "--stats"]) == 0
    assert "cache: disabled" in capsys.readouterr().err


def test_emit_interleaving_writes_report(tmp_path, capsys):
    pkg = tmp_path / "repro" / "ftl"
    pkg.mkdir(parents=True)
    (tmp_path / "repro" / "__init__.py").write_text("")
    (pkg / "__init__.py").write_text("")
    (pkg / "ssd.py").write_text(
        "class BaseSSD:\n    def write(self, lpa):\n        return lpa\n"
    )
    out = tmp_path / "contract.md"
    assert (
        lint_main(
            [
                str(tmp_path / "repro"),
                "--no-cache",
                "--emit-interleaving",
                str(out),
            ]
        )
        == 0
    )
    text = out.read_text()
    assert text.startswith("<!-- Generated by")
    assert "host-serve" in text
    capsys.readouterr()
