"""Address-domain dataflow: seeded cross-domain violations."""

from tests.analysis.conftest import rule_ids


def test_cross_assign_lba_from_ppa(lint_package):
    violations = lint_package(
        {
            "repro.ftl.mapping": """
                def remap(lpa, ppa):
                    lpa = ppa
                    return lpa
            """,
        },
        rules=["domains-cross-assign"],
    )
    assert rule_ids(violations) == ["domains-cross-assign"]
    assert violations[0].line == 3


def test_same_domain_assign_is_clean(lint_package):
    violations = lint_package(
        {
            "repro.ftl.mapping": """
                def remap(ppa, new_ppa):
                    ppa = new_ppa
                    return ppa
            """,
        },
        rules=["domains-cross-assign"],
    )
    assert violations == []


def test_cross_compare_time_vs_ppa(lint_package):
    violations = lint_package(
        {
            "repro.timessd.walk": """
                def expired(ppa, deadline):
                    return ppa > deadline
            """,
        },
        rules=["domains-cross-compare"],
    )
    assert rule_ids(violations) == ["domains-cross-compare"]


def test_count_offsets_do_not_mix(lint_package):
    violations = lint_package(
        {
            "repro.flash.span": """
                def advance(lpa, npages):
                    return lpa + npages
            """,
        },
        rules=["domains-cross-compare"],
    )
    assert violations == []


def test_cross_arg_against_name_seeded_param(lint_package):
    violations = lint_package(
        {
            "repro.ftl.gc": """
                def _mark(ppa):
                    return ppa


                def sweep(lpa):
                    return _mark(lpa)
            """,
        },
        rules=["domains-cross-arg"],
    )
    assert rule_ids(violations) == ["domains-cross-arg"]


def test_cross_arg_against_newtype_annotation(lint_package):
    violations = lint_package(
        {
            "repro.flash.geom": """
                from repro.common.units import Ppa


                def check(ppa: Ppa):
                    return ppa


                def probe(t_us):
                    return check(t_us)
            """,
        },
        rules=["domains-cross-arg"],
    )
    assert rule_ids(violations) == ["domains-cross-arg"]


def test_annotation_seeds_local_flow(lint_package):
    violations = lint_package(
        {
            "repro.flash.geom": """
                from repro.common.units import TimeUs


                def shift(lpa, stamp: TimeUs):
                    lpa = stamp
                    return lpa
            """,
        },
        rules=["domains-cross-assign"],
    )
    assert rule_ids(violations) == ["domains-cross-assign"]


def test_branch_merge_forgets_disagreeing_domains(lint_package):
    violations = lint_package(
        {
            "repro.ftl.pick": """
                def pick(flag, ppa, deadline):
                    if flag:
                        x = ppa
                    else:
                        x = deadline
                    y = x
                    return y
            """,
        },
        rules=["domains-cross-assign"],
    )
    assert violations == []
