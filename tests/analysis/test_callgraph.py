"""Call-graph builder: resolution, hierarchy, unresolved reporting."""

from repro.analysis.callgraph import build_call_graph
from repro.analysis.core import Project, SourceModule, collect_files


def graph_for(root):
    modules = [SourceModule.from_path(p) for p in collect_files([root])]
    return build_call_graph(Project(modules))


def test_reexported_name_resolves_to_definition(package_tree):
    root = package_tree(
        {
            "repro.common.errors": """
                class ReproError(Exception):
                    pass


                class UncorrectableReadError(ReproError):
                    pass
            """,
            "repro.flash.__init__": """
                from repro.common.errors import UncorrectableReadError
            """,
            "repro.ftl.user": """
                from repro.flash import UncorrectableReadError


                def handle():
                    return UncorrectableReadError()
            """,
        }
    )
    graph = graph_for(root)
    edges = graph.edges["repro.ftl.user.handle"]
    assert "repro.common.errors.UncorrectableReadError" in edges


def test_method_resolution_through_attribute_type(package_tree):
    root = package_tree(
        {
            "repro.ftl.block_manager": """
                class BlockManager:
                    def claim_block(self, pba):
                        return pba
            """,
            "repro.timessd.recovery": """
                from repro.ftl.block_manager import BlockManager


                class Rebuilder:
                    def __init__(self):
                        self.bm = BlockManager()

                    def rebuild(self):
                        return self.bm.claim_block(3)
            """,
        }
    )
    graph = graph_for(root)
    caller = "repro.timessd.recovery.Rebuilder.rebuild"
    callee = "repro.ftl.block_manager.BlockManager.claim_block"
    assert callee in graph.edges[caller]
    assert (caller, callee) not in graph.ambiguous_edges


def test_override_dispatch_targets_base_and_subclass(package_tree):
    root = package_tree(
        {
            "repro.ftl.ssd": """
                class BaseSSD:
                    def flush(self):
                        return 0

                    def sync(self):
                        return self.flush()
            """,
            "repro.timessd.ssd": """
                from repro.ftl.ssd import BaseSSD


                class TimeSSD(BaseSSD):
                    def flush(self):
                        return 1
            """,
        }
    )
    graph = graph_for(root)
    edges = graph.edges["repro.ftl.ssd.BaseSSD.sync"]
    assert "repro.ftl.ssd.BaseSSD.flush" in edges
    assert "repro.timessd.ssd.TimeSSD.flush" in edges


def test_dynamic_call_lands_in_unresolved_report(package_tree):
    root = package_tree(
        {
            "repro.workloads.runner": """
                def apply(handler):
                    return handler()
            """,
        }
    )
    graph = graph_for(root)
    dynamic = [u for u in graph.unresolved if u.reason == "dynamic-call"]
    assert any(u.caller == "repro.workloads.runner.apply" for u in dynamic)
    assert graph.edges.get("repro.workloads.runner.apply", {}) == {}


def test_ambiguous_method_edges_to_all_candidates(package_tree):
    root = package_tree(
        {
            "repro.flash.a": """
                class Reader:
                    def poke(self):
                        return 1
            """,
            "repro.ftl.b": """
                class Writer:
                    def poke(self):
                        return 2
            """,
            "repro.obs.c": """
                def kick(thing):
                    return thing.poke()
            """,
        }
    )
    graph = graph_for(root)
    caller = "repro.obs.c.kick"
    edges = graph.edges[caller]
    assert "repro.flash.a.Reader.poke" in edges
    assert "repro.ftl.b.Writer.poke" in edges
    assert (caller, "repro.flash.a.Reader.poke") in graph.ambiguous_edges
    ambiguous = [u for u in graph.unresolved if u.reason == "ambiguous-method"]
    assert any(u.caller == caller for u in ambiguous)


def test_builtin_method_names_do_not_count_as_ambiguous(package_tree):
    root = package_tree(
        {
            "repro.common.holder": """
                def gather(items):
                    out = []
                    out.append(items)
                    return out
            """,
        }
    )
    graph = graph_for(root)
    assert graph.edges.get("repro.common.holder.gather", {}) == {}
    assert not any(
        u.caller == "repro.common.holder.gather" for u in graph.unresolved
    )
