"""Determinism pack: wall clocks and global randomness are caught."""

from tests.analysis.conftest import rule_ids

RULES = ["determinism"]


def test_time_time_flagged(lint):
    violations = lint("import time\nt0 = time.time()\n", rules=RULES)
    assert rule_ids(violations) == ["determinism-wallclock"]
    assert "SimClock" in violations[0].message


def test_time_sleep_and_monotonic_flagged(lint):
    source = (
        "import time\n"
        "time.sleep(1)\n"
        "t = time.monotonic()\n"
    )
    assert rule_ids(lint(source, rules=RULES)) == [
        "determinism-wallclock",
        "determinism-wallclock",
    ]


def test_time_alias_flagged(lint):
    source = "import time as wall\nt0 = wall.perf_counter()\n"
    assert rule_ids(lint(source, rules=RULES)) == ["determinism-wallclock"]


def test_datetime_now_flagged_both_import_styles(lint):
    direct = "import datetime\nd = datetime.datetime.now()\n"
    assert rule_ids(lint(direct, rules=RULES)) == ["determinism-wallclock"]
    from_style = "from datetime import datetime\nd = datetime.utcnow()\n"
    assert rule_ids(lint(from_style, rules=RULES)) == ["determinism-wallclock"]


def test_simclock_usage_is_clean(lint):
    source = (
        "from repro.common.clock import SimClock\n"
        "clock = SimClock()\n"
        "clock.advance(10)\n"
        "now = clock.now_us\n"
    )
    assert lint(source, rules=RULES) == []


def test_unrelated_time_attribute_is_clean(lint):
    # A local object that happens to be called `time` is not the module.
    source = "time = get_profiler()\nx = time.time()\n"
    assert lint(source, rules=RULES) == []


def test_global_random_call_flagged(lint):
    source = "import random\nx = random.randrange(10)\n"
    violations = lint(source, rules=RULES)
    assert rule_ids(violations) == ["determinism-global-random"]
    assert "random.Random(seed)" in violations[0].message


def test_from_random_import_flagged_at_import(lint):
    source = "from random import randrange\nx = randrange(10)\n"
    violations = lint(source, rules=RULES)
    assert rule_ids(violations) == ["determinism-global-random"]
    assert violations[0].line == 1


def test_unseeded_random_ctor_flagged(lint):
    assert rule_ids(
        lint("import random\nrng = random.Random()\n", rules=RULES)
    ) == ["determinism-unseeded-rng"]
    # `from random import Random` unseeded is caught too (the import of
    # Random itself is fine).
    assert rule_ids(
        lint("from random import Random\nrng = Random()\n", rules=RULES)
    ) == ["determinism-unseeded-rng"]


def test_seeded_random_is_clean(lint):
    source = (
        "import random\n"
        "rng = random.Random(42)\n"
        "kw = random.Random(x=1)\n"
        "x = rng.randrange(10)\n"
        "y = rng.gauss(0.2, 0.05)\n"
    )
    assert lint(source, rules=RULES) == []


def test_latencystats_without_rng_flagged(lint):
    source = (
        "from repro.common.stats import LatencyStats\n"
        "stats = LatencyStats()\n"
    )
    assert rule_ids(lint(source, rules=RULES)) == [
        "determinism-latencystats-rng"
    ]


def test_latencystats_attribute_call_without_rng_flagged(lint):
    source = (
        "import repro.common.stats as stats\n"
        "s = stats.LatencyStats()\n"
    )
    assert rule_ids(lint(source, rules=RULES)) == [
        "determinism-latencystats-rng"
    ]


def test_latencystats_with_rng_clean(lint):
    source = (
        "import random\n"
        "from repro.common.stats import LatencyStats\n"
        "a = LatencyStats(random.Random(7))\n"
        "b = LatencyStats(rng=random.Random(8))\n"
    )
    assert rule_ids(lint(source, rules=RULES)) == []


def test_latencystats_with_kwargs_passthrough_clean(lint):
    source = (
        "from repro.common.stats import LatencyStats\n"
        "def make(**kwargs):\n"
        "    return LatencyStats(**kwargs)\n"
    )
    assert rule_ids(lint(source, rules=RULES)) == []


def test_latencystats_suppressible(lint):
    source = (
        "from repro.common.stats import LatencyStats\n"
        "s = LatencyStats()  # almanac: ignore[determinism-latencystats-rng]\n"
    )
    assert rule_ids(lint(source, rules=RULES)) == []
