"""Framework mechanics: registry, suppressions, parse errors, ordering."""

import pytest

from repro.analysis.core import (
    PARSE_ERROR_RULE,
    SourceModule,
    all_rules,
    rules_by_id,
)

from tests.analysis.conftest import rule_ids

VIOLATING = "import time\nt0 = time.time()\n"


def test_registry_has_all_packs():
    packs = {rule.pack for rule in all_rules()}
    assert packs == {
        "determinism",
        "layering",
        "hygiene",
        "callgraph",
        "effects",
        "domains",
        "concurrency",
        "obs",
    }
    ids = [rule.rule_id for rule in all_rules()]
    assert len(ids) == len(set(ids))
    for rule in all_rules():
        assert rule.description


def test_rules_by_id_accepts_ids_and_packs():
    chosen = rules_by_id(["determinism-wallclock"])
    assert [r.rule_id for r in chosen] == ["determinism-wallclock"]
    pack = rules_by_id(["hygiene"])
    assert len(pack) >= 3
    assert all(r.pack == "hygiene" for r in pack)


def test_rules_by_id_rejects_unknown():
    with pytest.raises(KeyError, match="unknown rule or pack"):
        rules_by_id(["no-such-rule"])


def test_violation_format_has_rule_id_and_location(lint):
    violations = lint(VIOLATING, rules=["determinism"])
    assert len(violations) == 1
    rendered = str(violations[0])
    assert "snippet.py:2:6: [determinism-wallclock]" in rendered


def test_suppression_with_matching_id(lint):
    source = (
        "import time\n"
        "t0 = time.time()  # almanac: ignore[determinism-wallclock]\n"
    )
    assert lint(source, rules=["determinism"]) == []


def test_suppression_star_silences_all_rules(lint):
    source = "import time\nt0 = time.time()  # almanac: ignore\n"
    assert lint(source, rules=["determinism"]) == []


def test_suppression_wrong_id_does_not_silence(lint):
    source = (
        "import time\n"
        "t0 = time.time()  # almanac: ignore[hygiene-print]\n"
    )
    assert rule_ids(lint(source, rules=["determinism"])) == [
        "determinism-wallclock"
    ]


def test_suppression_comma_list(lint):
    source = (
        "import time, random\n"
        "x = time.time() + random.random()"
        "  # almanac: ignore[determinism-wallclock, determinism-global-random]\n"
    )
    assert lint(source, rules=["determinism"]) == []


def test_suppression_only_applies_to_its_line(lint):
    source = (
        "import time\n"
        "a = time.time()  # almanac: ignore[determinism-wallclock]\n"
        "b = time.time()\n"
    )
    violations = lint(source, rules=["determinism"])
    assert [(v.rule_id, v.line) for v in violations] == [
        ("determinism-wallclock", 3)
    ]


def test_parse_error_is_reported_not_raised(lint):
    violations = lint("def broken(:\n    pass\n")
    assert rule_ids(violations) == [PARSE_ERROR_RULE]
    assert violations[0].line == 1


def test_violations_sorted_by_location(lint):
    source = (
        "import time\n"
        "def f(x=[]):\n"
        "    return time.time()\n"
    )
    violations = lint(source)
    assert [v.line for v in violations] == sorted(v.line for v in violations)


def test_module_name_resolution(tmp_path):
    pkg = tmp_path / "repro" / "flash"
    pkg.mkdir(parents=True)
    (tmp_path / "repro" / "__init__.py").write_text("")
    (pkg / "__init__.py").write_text("")
    (pkg / "page.py").write_text("x = 1\n")
    assert SourceModule.from_path(str(pkg / "page.py")).module == "repro.flash.page"
    assert SourceModule.from_path(str(pkg / "__init__.py")).module == "repro.flash"
    loose = tmp_path / "loose.py"
    loose.write_text("x = 1\n")
    assert SourceModule.from_path(str(loose)).module is None
