"""obs-uncataloged-metric: code vs docs/OBSERVABILITY.md, both ways.

The catalog lives *outside* the analyzed tree, so these tests build it
next to the synthetic package (``find_catalog`` walks up from the
analyzed files) and also pin :func:`catalog_fingerprint`, the hook that
keys the result cache on catalog content.
"""

from repro.analysis.rules.observability import (
    _covers,
    _template,
    catalog_fingerprint,
)

from tests.analysis.conftest import rule_ids

OBS_RULE = "obs-uncataloged-metric"

REGISTRY = """
    class MetricsRegistry:
        pass

    metrics = MetricsRegistry()
"""


def _catalog(tmp_path, rows):
    docs = tmp_path / "docs"
    docs.mkdir(exist_ok=True)
    lines = [
        "# Observability",
        "",
        "## Metric catalog",
        "",
        "| metric | kind | meaning |",
        "| --- | --- | --- |",
    ]
    lines += ["| `%s` | gauge | something |" % name for name in rows]
    lines += ["", "## Something else", "", "| `not.a.metric` | x | y |"]
    (docs / "OBSERVABILITY.md").write_text("\n".join(lines) + "\n")


def test_uncataloged_emission_is_flagged(tmp_path, lint_package):
    _catalog(tmp_path, ["ftl.gc.moves"])
    violations = lint_package({
        "repro.obs.metrics": REGISTRY,
        "repro.ftl.gc": """
            from repro.obs.metrics import metrics

            def collect():
                metrics.counter("ftl.gc.moves")
                metrics.gauge("ftl.gc.backlog")
        """,
    }, rules=[OBS_RULE])
    assert rule_ids(violations) == [OBS_RULE]
    assert "ftl.gc.backlog" in violations[0].message
    assert violations[0].path.endswith("gc.py")


def test_cataloged_literal_is_clean(tmp_path, lint_package):
    _catalog(tmp_path, ["ftl.gc.moves", "ftl.gc.backlog"])
    violations = lint_package({
        "repro.obs.metrics": REGISTRY,
        "repro.ftl.gc": """
            from repro.obs.metrics import metrics

            def collect():
                metrics.counter("ftl.gc.moves")
                metrics.gauge("ftl.gc.backlog")
        """,
    }, rules=[OBS_RULE])
    assert violations == []


def test_percent_format_matches_placeholder_row(tmp_path, lint_package):
    _catalog(tmp_path, ["nvme.op.<OPCODE>", "flash.chip_qdepth_max.N"])
    violations = lint_package({
        "repro.obs.metrics": REGISTRY,
        "repro.nvme.engine": """
            from repro.obs.metrics import metrics

            def account(op, chip):
                metrics.counter("nvme.op.%s" % op)
                metrics.gauge("flash.chip_qdepth_max.%d" % chip)
        """,
    }, rules=[OBS_RULE])
    assert violations == []


def test_fstring_emission_matches_placeholder_row(tmp_path, lint_package):
    _catalog(tmp_path, ["nvme.op.<OPCODE>"])
    violations = lint_package({
        "repro.obs.metrics": REGISTRY,
        "repro.nvme.engine": """
            from repro.obs.metrics import metrics

            def account(op):
                metrics.counter(f"nvme.op.{op}")
        """,
    }, rules=[OBS_RULE])
    assert violations == []


def test_unreadable_name_expression_is_skipped(tmp_path, lint_package):
    _catalog(tmp_path, ["ftl.gc.moves"])
    violations = lint_package({
        "repro.obs.metrics": REGISTRY,
        "repro.ftl.gc": """
            from repro.obs.metrics import metrics

            def collect(name):
                metrics.counter("ftl.gc.moves")
                metrics.counter(name)
        """,
    }, rules=[OBS_RULE])
    assert violations == []


def test_rotted_catalog_row_is_flagged_at_registry(tmp_path, lint_package):
    _catalog(tmp_path, ["ftl.gc.moves", "ftl.gc.retired_in_pr3"])
    violations = lint_package({
        "repro.obs.metrics": REGISTRY,
        "repro.ftl.gc": """
            from repro.obs.metrics import metrics

            def collect():
                metrics.counter("ftl.gc.moves")
        """,
    }, rules=[OBS_RULE])
    assert rule_ids(violations) == [OBS_RULE]
    assert "ftl.gc.retired_in_pr3" in violations[0].message
    # Doc line number is in the message, anchor is the registry module.
    assert "line 8" in violations[0].message
    assert violations[0].path.endswith("metrics.py")


def test_no_catalog_means_no_findings(lint_package):
    violations = lint_package({
        "repro.obs.metrics": REGISTRY,
        "repro.ftl.gc": """
            from repro.obs.metrics import metrics

            def collect():
                metrics.counter("totally.undocumented")
        """,
    }, rules=[OBS_RULE])
    assert violations == []


def test_catalog_fingerprint_tracks_content(tmp_path):
    pkg = tmp_path / "pkg"
    pkg.mkdir()
    assert catalog_fingerprint([str(pkg)]) == "no-catalog"
    _catalog(tmp_path, ["a.b"])
    first = catalog_fingerprint([str(pkg)])
    assert first != "no-catalog"
    _catalog(tmp_path, ["a.b", "c.d"])
    assert catalog_fingerprint([str(pkg)]) != first


def test_template_and_covers_normalization():
    assert _template("nvme.op.<OPCODE>") == "nvme.op.*"
    assert _template("flash.chip_qdepth_max.N") == "flash.chip_qdepth_max.*"
    assert _template("nvme.op.%s") == "nvme.op.*"
    assert _covers("nvme.op.*", "nvme.op.read")
    assert not _covers("nvme.op.*", "nvme.opread")
    assert not _covers("nvme.op.*", "nvme.op.read.extra")
    assert _covers("a.b", "a.b")
