"""Hygiene pack: mutable defaults, bare except, print, unit mixing."""

from tests.analysis.conftest import rule_ids

RULES = ["hygiene"]


def test_mutable_default_list_and_set_flagged(lint):
    source = (
        "def f(items=[]):\n"
        "    return items\n"
        "def g(seen=set(), *, index={}):\n"
        "    return seen, index\n"
    )
    violations = lint(source, rules=RULES)
    assert rule_ids(violations) == ["hygiene-mutable-default"] * 3


def test_safe_defaults_clean(lint):
    source = (
        "def f(items=None, n=3, name='x', mode=()):\n"
        "    return items or []\n"
        "def g(factory=list):\n"
        "    return factory()\n"
    )
    assert lint(source, rules=RULES) == []


def test_bare_except_flagged_typed_clean(lint):
    source = (
        "try:\n"
        "    x = 1\n"
        "except:\n"
        "    pass\n"
        "try:\n"
        "    y = 2\n"
        "except ValueError:\n"
        "    pass\n"
    )
    violations = lint(source, rules=RULES)
    assert rule_ids(violations) == ["hygiene-bare-except"]
    assert violations[0].line == 3


def test_print_in_library_module_flagged(lint_package):
    violations = lint_package(
        {"repro.timessd.chatty": "def f():\n    print('debug')\n"},
        rules=RULES,
    )
    assert rule_ids(violations) == ["hygiene-print"]


def test_print_in_cli_exempt(lint_package):
    violations = lint_package(
        {"repro.cli": "def main():\n    print('table')\n"}, rules=RULES
    )
    assert violations == []


def test_unit_mix_in_addition_flagged(lint):
    violations = lint("total = delay_us + timeout_ms\n", rules=RULES)
    assert rule_ids(violations) == ["hygiene-unit-mix"]
    assert "delay_us" in violations[0].message
    assert "timeout_ms" in violations[0].message


def test_unit_mix_bytes_vs_time_and_comparison_flagged(lint):
    source = (
        "if size_bytes > window_us:\n"
        "    x = quota_mib - used_bytes\n"
    )
    assert rule_ids(lint(source, rules=RULES)) == [
        "hygiene-unit-mix",
        "hygiene-unit-mix",
    ]


def test_same_unit_and_conversion_arithmetic_clean(lint):
    source = (
        "total_us = start_us + delta_us\n"
        "converted = delay_ms * MS_US\n"  # multiplying converts: allowed
        "mixed_names = status + bonus\n"  # no unit suffixes at all
        "attr = self.start_us - other.end_us\n"
    )
    assert lint(source, rules=RULES) == []
