"""The unused-suppression rule and tokenizer-based marker parsing."""

from repro.analysis.core import UNUSED_SUPPRESSION_RULE

from tests.analysis.conftest import rule_ids

DIRTY_LINE = "import time\nt0 = time.time()"


def test_unused_id_suppression_is_reported(lint):
    source = "X = 1  # almanac: ignore[determinism-wallclock]\n"
    violations = lint(source)
    assert rule_ids(violations) == [UNUSED_SUPPRESSION_RULE]
    assert violations[0].line == 1
    assert "determinism-wallclock" in violations[0].message


def test_used_suppression_is_not_reported(lint):
    source = DIRTY_LINE + "  # almanac: ignore[determinism-wallclock]\n"
    assert lint(source) == []


def test_unused_blanket_suppression_reported_on_full_run(lint):
    source = "X = 1  # almanac: ignore\n"
    violations = lint(source)
    assert rule_ids(violations) == [UNUSED_SUPPRESSION_RULE]


def test_blanket_not_judged_under_partial_selection(lint):
    # A narrowed --select cannot prove a blanket ignore useless: some
    # unselected rule may be the one it suppresses.
    source = "X = 1  # almanac: ignore\n"
    violations = lint(
        source, rules=[UNUSED_SUPPRESSION_RULE, "determinism-wallclock"]
    )
    assert violations == []


def test_unused_id_still_reported_under_partial_selection(lint):
    source = "X = 1  # almanac: ignore[determinism-wallclock]\n"
    violations = lint(
        source, rules=[UNUSED_SUPPRESSION_RULE, "determinism-wallclock"]
    )
    assert rule_ids(violations) == [UNUSED_SUPPRESSION_RULE]


def test_unselected_id_is_not_judged(lint):
    # determinism-wallclock is not in the selection, so the suppression
    # naming it cannot be proven dead.
    source = "X = 1  # almanac: ignore[determinism-wallclock]\n"
    violations = lint(
        source, rules=[UNUSED_SUPPRESSION_RULE, "hygiene-print"]
    )
    assert violations == []


def test_docstring_mention_is_not_a_suppression(lint):
    source = (
        '"""Docs may say # almanac: ignore[determinism-wallclock] freely."""\n'
        + DIRTY_LINE
        + "\n"
    )
    violations = lint(source)
    assert rule_ids(violations) == ["determinism-wallclock"]


def test_one_used_one_unused_on_same_line(lint):
    source = (
        DIRTY_LINE
        + "  # almanac: ignore[determinism-wallclock, hygiene-print]\n"
    )
    violations = lint(source)
    assert rule_ids(violations) == [UNUSED_SUPPRESSION_RULE]
    assert "hygiene-print" in violations[0].message
    assert "determinism-wallclock" not in violations[0].message
