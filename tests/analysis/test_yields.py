"""The yield/lane tier: staleness across waits, lane discipline,
task-generator protocol, and the extended contract report.

Synthetic trees define a minimal ``repro.sched.core`` with the real
wait-instruction and ``EventLoop.spawn`` qualnames so the hard-coded
seeds in ``repro.analysis.concurrency.model`` apply; task-root names
(``repro.sched.tasks.background_gc_task``) reuse the real root table so
the shared-state inventory sees the writes.  The shipped tree's own
cleanliness is asserted by ``test_runner.test_whole_tree_is_clean``.
"""

import json

from repro.analysis.concurrency.report import render_report
from repro.analysis.concurrency.yields import yield_analysis
from repro.analysis.core import Project, SourceModule, collect_files
from repro.analysis.runner import main as lint_main

from tests.analysis.conftest import rule_ids

SCHED_CORE = """
    class Delay:
        def __init__(self, us):
            self.us = us

    class At:
        def __init__(self, at_us):
            self.at_us = at_us

    class Acquire:
        def __init__(self, lane):
            self.lane = lane

    class Release:
        def __init__(self, lane):
            self.lane = lane

    class Join:
        def __init__(self, task):
            self.task = task

    class Lane:
        def __init__(self, name):
            self.name = name

    class EventLoop:
        def spawn(self, gen, name, root="task", daemon=False, at_us=None):
            return (gen, name, root, daemon, at_us)
"""


def _project(package_tree, files):
    root = package_tree(files)
    return Project(
        [SourceModule.from_path(p) for p in collect_files([root])]
    )


def _tree(extra):
    files = {"repro.sched.core": SCHED_CORE}
    files.update(extra)
    return files


# --- Task-generator detection and the may-yield set ---------------------------


def test_task_generator_detected_via_wait_yield(package_tree):
    project = _project(package_tree, _tree({
        "repro.sched.tasks": """
            from repro.sched.core import Delay

            def background_gc_task(loop, ssd):
                while True:
                    yield Delay(100)
        """,
    }))
    analysis = yield_analysis(project)
    assert (
        "repro.sched.tasks.background_gc_task" in analysis.task_generators
    )
    assert analysis.daemons == frozenset()


def test_task_generator_detected_via_spawn_with_daemon_flag(package_tree):
    project = _project(package_tree, _tree({
        "repro.sched.tasks": """
            from repro.sched.core import EventLoop

            def worker_task(ssd):
                yield ssd.next_item()

            def install(loop, ssd):
                loop.spawn(worker_task(ssd), name="w", daemon=True)
        """,
    }))
    analysis = yield_analysis(project)
    assert "repro.sched.tasks.worker_task" in analysis.task_generators
    assert "repro.sched.tasks.worker_task" in analysis.daemons
    assert "repro.sched.tasks.install" not in analysis.task_generators


def test_data_generator_is_not_a_task_generator(package_tree):
    project = _project(package_tree, _tree({
        "repro.flash.device": """
            class FlashDevice:
                def scan_oob(self, block):
                    for page in self.pages(block):
                        yield page
        """,
    }))
    analysis = yield_analysis(project)
    assert analysis.task_generators == {}
    # ... but it still lands in the may-yield set for the contract.
    assert (
        "repro.flash.device.FlashDevice.scan_oob" in analysis.may_yield
    )


def test_may_yield_propagates_to_callers_over_confident_edges(package_tree):
    project = _project(package_tree, _tree({
        "repro.ftl.ssd": """
            from repro.sched.core import Delay

            class BaseSSD:
                def write(self, lpa):
                    return self._wait_then(lpa)

                def _wait_then(self, lpa):
                    yield Delay(5)

                def trim(self, lpa):
                    return lpa
        """,
    }))
    analysis = yield_analysis(project)
    assert "repro.ftl.ssd.BaseSSD._wait_then" in analysis.may_yield
    assert "repro.ftl.ssd.BaseSSD.write" in analysis.may_yield
    assert "repro.ftl.ssd.BaseSSD.trim" not in analysis.may_yield


def test_yield_from_delegation_closure(package_tree):
    project = _project(package_tree, _tree({
        "repro.sched.tasks": """
            from repro.sched.core import Delay

            def drain_task(ssd):
                yield Delay(1)
                yield from drain_helper(ssd)

            def drain_helper(ssd):
                yield Delay(3)
        """,
    }))
    analysis = yield_analysis(project)
    assert "repro.sched.tasks.drain_helper" in analysis.task_generators


# --- concurrency-stale-read-after-yield ---------------------------------------

STALE_RULE = "concurrency-stale-read-after-yield"


def test_stale_read_after_yield_fires(lint_package):
    violations = lint_package(_tree({
        "repro.sched.tasks": """
            from repro.sched.core import Delay

            def background_gc_task(loop, ssd):
                while True:
                    pending = ssd.queue_len
                    ssd.queue_len = pending + 1
                    yield Delay(100)
                    ssd.consume(pending)
        """,
    }), rules=[STALE_RULE])
    assert rule_ids(violations) == [STALE_RULE]
    assert "pending" in violations[0].message
    assert "queue_len" in violations[0].message


def test_stale_read_rereading_after_yield_is_clean(lint_package):
    violations = lint_package(_tree({
        "repro.sched.tasks": """
            from repro.sched.core import Delay

            def background_gc_task(loop, ssd):
                while True:
                    pending = ssd.queue_len
                    ssd.queue_len = pending + 1
                    yield Delay(100)
                    pending = ssd.queue_len
                    ssd.consume(pending)
        """,
    }), rules=[STALE_RULE])
    assert violations == []


def test_stale_read_protected_by_held_lane_is_clean(lint_package):
    violations = lint_package(_tree({
        "repro.sched.tasks": """
            from repro.sched.core import Acquire, Delay, Lane, Release

            GC_LANE = Lane("gc")

            def background_gc_task(loop, ssd):
                while True:
                    yield Acquire(GC_LANE)
                    pending = ssd.queue_len
                    ssd.queue_len = pending + 1
                    yield Delay(5)
                    ssd.consume(pending)
                    yield Release(GC_LANE)
        """,
    }), rules=[STALE_RULE])
    assert violations == []


def test_stale_read_skips_data_generators(lint_package):
    # The same capture/use shape, but the generator yields values to a
    # same-task consumer — its yields do not suspend the task.
    violations = lint_package(_tree({
        "repro.sched.tasks": """
            def background_gc_task(loop, ssd):
                pending = ssd.queue_len
                ssd.queue_len = pending + 1
                yield pending
                ssd.consume(pending)
        """,
    }), rules=[STALE_RULE])
    assert violations == []


# --- Lane discipline ----------------------------------------------------------


def test_lane_leak_on_return_while_holding(lint_package):
    violations = lint_package(_tree({
        "repro.sched.tasks": """
            from repro.sched.core import Acquire, Lane, Release

            GC_LANE = Lane("gc")

            def background_gc_task(loop, ssd):
                yield Acquire(GC_LANE)
                if ssd.busy:
                    return
                yield Release(GC_LANE)
        """,
    }), rules=["concurrency-lane-leak"])
    assert rule_ids(violations) == ["concurrency-lane-leak"]
    assert "returns" in violations[0].message


def test_lane_leak_on_exception_edge(lint_package):
    violations = lint_package(_tree({
        "repro.sched.tasks": """
            from repro.sched.core import Acquire, Lane, Release

            GC_LANE = Lane("gc")

            def background_gc_task(loop, ssd):
                yield Acquire(GC_LANE)
                if ssd.broken:
                    raise ValueError("broken mid-section")
                yield Release(GC_LANE)
        """,
    }), rules=["concurrency-lane-leak"])
    assert rule_ids(violations) == ["concurrency-lane-leak"]
    assert "raises" in violations[0].message


def test_lane_release_in_finally_protects_exception_edge(lint_package):
    violations = lint_package(_tree({
        "repro.sched.tasks": """
            from repro.sched.core import Acquire, Delay, Lane, Release

            GC_LANE = Lane("gc")

            def background_gc_task(loop, ssd):
                yield Acquire(GC_LANE)
                try:
                    if ssd.broken:
                        raise ValueError("broken mid-section")
                    yield Delay(5)
                finally:
                    yield Release(GC_LANE)
        """,
    }), rules=["concurrency-lane-leak"])
    assert violations == []


def test_lane_release_without_hold(lint_package):
    violations = lint_package(_tree({
        "repro.sched.tasks": """
            from repro.sched.core import Lane, Release

            GC_LANE = Lane("gc")

            def background_gc_task(loop, ssd):
                yield Release(GC_LANE)
        """,
    }), rules=["concurrency-lane-leak"])
    assert rule_ids(violations) == ["concurrency-lane-leak"]
    assert "does not hold" in violations[0].message


def test_lane_double_acquire(lint_package):
    violations = lint_package(_tree({
        "repro.sched.tasks": """
            from repro.sched.core import Acquire, Lane, Release

            GC_LANE = Lane("gc")

            def background_gc_task(loop, ssd):
                yield Acquire(GC_LANE)
                yield Acquire(GC_LANE)
                yield Release(GC_LANE)
        """,
    }), rules=["concurrency-lane-double-acquire"])
    assert rule_ids(violations) == ["concurrency-lane-double-acquire"]


def test_lane_order_cycle_across_tasks(lint_package):
    violations = lint_package(_tree({
        "repro.sched.tasks": """
            from repro.sched.core import Acquire, Lane, Release

            MAP_LANE = Lane("map")
            GC_LANE = Lane("gc")

            def background_gc_task(loop, ssd):
                yield Acquire(MAP_LANE)
                yield Acquire(GC_LANE)
                yield Release(GC_LANE)
                yield Release(MAP_LANE)

            def background_scrub_task(loop, ssd):
                yield Acquire(GC_LANE)
                yield Acquire(MAP_LANE)
                yield Release(MAP_LANE)
                yield Release(GC_LANE)
        """,
    }), rules=["concurrency-lane-order-cycle"])
    assert rule_ids(violations) == ["concurrency-lane-order-cycle"]
    assert "GC_LANE" in violations[0].message
    assert "MAP_LANE" in violations[0].message


def test_consistent_lane_order_is_acyclic(lint_package):
    violations = lint_package(_tree({
        "repro.sched.tasks": """
            from repro.sched.core import Acquire, Lane, Release

            MAP_LANE = Lane("map")
            GC_LANE = Lane("gc")

            def background_gc_task(loop, ssd):
                yield Acquire(MAP_LANE)
                yield Acquire(GC_LANE)
                yield Release(GC_LANE)
                yield Release(MAP_LANE)

            def background_scrub_task(loop, ssd):
                yield Acquire(MAP_LANE)
                yield Acquire(GC_LANE)
                yield Release(GC_LANE)
                yield Release(MAP_LANE)
        """,
    }), rules=["concurrency-lane-order-cycle", "concurrency-lane-leak"])
    assert violations == []


# --- Task-generator protocol --------------------------------------------------


def test_bad_yield_value_fires_on_non_instruction(lint_package):
    violations = lint_package(_tree({
        "repro.sched.tasks": """
            from repro.sched.core import Delay

            def background_gc_task(loop, ssd):
                yield Delay(5)
                yield 42
        """,
    }), rules=["concurrency-bad-yield-value"])
    assert rule_ids(violations) == ["concurrency-bad-yield-value"]
    assert "42" in violations[0].message


def test_bad_yield_value_fires_on_bare_yield(lint_package):
    violations = lint_package(_tree({
        "repro.sched.tasks": """
            from repro.sched.core import Delay

            def background_gc_task(loop, ssd):
                yield Delay(5)
                yield
        """,
    }), rules=["concurrency-bad-yield-value"])
    assert rule_ids(violations) == ["concurrency-bad-yield-value"]
    assert "bare" in violations[0].message


def test_bad_yield_value_accepts_instruction_alias(lint_package):
    violations = lint_package(_tree({
        "repro.sched.core": SCHED_CORE,
        "repro.sched.tasks": """
            from repro.sched.core import Delay, EventLoop

            def tick_task(ssd):
                step = Delay(5)
                while True:
                    yield step

            def install(loop, ssd):
                loop.spawn(tick_task(ssd), name="tick")
        """,
    }), rules=["concurrency-bad-yield-value"])
    assert violations == []


def test_bad_yield_value_flags_delegated_value_yields(lint_package):
    # ``yield from`` forwards the sub-generator's yields to the loop,
    # so a value-yielding delegate is flagged *inside the delegate*.
    violations = lint_package(_tree({
        "repro.sched.tasks": """
            from repro.sched.core import Delay

            def background_gc_task(loop, ssd):
                yield Delay(1)
                yield from page_stream(ssd)

            def page_stream(ssd):
                yield 1
        """,
    }), rules=["concurrency-bad-yield-value"])
    assert len(violations) == 1
    assert "page_stream" in violations[0].message


def test_yield_from_unresolvable_delegate_is_flagged(lint_package):
    violations = lint_package(_tree({
        "repro.sched.tasks": """
            from repro.sched.core import Delay

            def background_gc_task(loop, ssd):
                yield Delay(1)
                yield from ssd.page_stream()
        """,
    }), rules=["concurrency-bad-yield-value"])
    assert rule_ids(violations) == ["concurrency-bad-yield-value"]
    assert "yield from" in violations[0].message


def test_return_in_daemon_fires(lint_package):
    violations = lint_package(_tree({
        "repro.sched.tasks": """
            from repro.sched.core import Delay, EventLoop

            def worker_task(ssd):
                if ssd.done:
                    return
                yield Delay(5)

            def install(loop, ssd):
                loop.spawn(worker_task(ssd), name="w", daemon=True)
        """,
    }), rules=["concurrency-return-in-daemon"])
    assert rule_ids(violations) == ["concurrency-return-in-daemon"]


def test_return_in_non_daemon_task_is_fine(lint_package):
    violations = lint_package(_tree({
        "repro.sched.tasks": """
            from repro.sched.core import Delay, EventLoop

            def worker_task(ssd):
                if ssd.done:
                    return
                yield Delay(5)

            def install(loop, ssd):
                loop.spawn(worker_task(ssd), name="w")
        """,
    }), rules=["concurrency-return-in-daemon"])
    assert violations == []


# --- Suppression and selection interplay (regression: --select) ---------------


def test_selecting_single_new_rule_runs_only_it(package_tree, capsys):
    root = package_tree(_tree({
        "repro.sched.tasks": """
            from repro.sched.core import Acquire, Lane

            GC_LANE = Lane("gc")

            def background_gc_task(loop, ssd):
                print("noise")
                yield Acquire(GC_LANE)
        """,
    }))
    # The tree has a hygiene-print hit AND a lane leak; a single-rule
    # selection must surface only the selected rule.
    assert lint_main(
        [root, "--select", "concurrency-lane-leak", "--no-cache"]
    ) == 1
    out = capsys.readouterr().out
    assert "concurrency-lane-leak" in out
    assert "hygiene-print" not in out


def test_pack_name_selects_new_rules_uniformly(package_tree, capsys):
    root = package_tree(_tree({
        "repro.sched.tasks": """
            from repro.sched.core import Acquire, Lane

            GC_LANE = Lane("gc")

            def background_gc_task(loop, ssd):
                yield Acquire(GC_LANE)
        """,
    }))
    assert lint_main([root, "--select", "concurrency", "--no-cache"]) == 1
    assert "concurrency-lane-leak" in capsys.readouterr().out
    # ... and --ignore drops them from a deep run.
    assert lint_main(
        [root, "--deep", "--ignore", "concurrency,obs", "--no-cache"]
    ) == 0


def test_suppression_with_reason_waives_finding(lint_package):
    violations = lint_package(_tree({
        "repro.sched.tasks": """
            from repro.sched.core import Delay

            def background_gc_task(loop, ssd):
                while True:
                    pending = ssd.queue_len
                    ssd.queue_len = pending + 1
                    yield Delay(100)
                    ssd.consume(pending)  # almanac: ignore[concurrency-stale-read-after-yield] -- advisory count, one wasted step max
        """,
    }), rules=[STALE_RULE])
    assert violations == []


def test_blanket_ignores_not_judged_on_filtered_runs(package_tree, capsys):
    root = package_tree(_tree({
        "repro.sched.tasks": """
            from repro.sched.core import Delay

            def background_gc_task(loop, ssd):
                while True:
                    hot = ssd.queue_len  # almanac: ignore
                    yield Delay(100)
        """,
    }))
    # A filtered run cannot prove the blanket ignore useless (other
    # rules might need it), so unused-suppression must stay quiet.
    assert lint_main(
        [root, "--select", "concurrency-stale-read-after-yield",
         "--no-cache"]
    ) == 0


# --- SARIF output for the new rules -------------------------------------------


def test_sarif_covers_yield_and_lane_rules(package_tree, capsys):
    root = package_tree(_tree({
        "repro.sched.tasks": """
            from repro.sched.core import Acquire, Delay, Lane

            GC_LANE = Lane("gc")

            def background_gc_task(loop, ssd):
                while True:
                    pending = ssd.queue_len
                    ssd.queue_len = pending + 1
                    yield Acquire(GC_LANE)
                    ssd.consume(pending)
        """,
    }))
    assert lint_main(
        [root, "--deep", "--format", "sarif", "--no-cache"]
    ) == 1
    document = json.loads(capsys.readouterr().out)
    run = document["runs"][0]
    metadata = {r["id"]: r for r in run["tool"]["driver"]["rules"]}
    for rule_id in (
        "concurrency-stale-read-after-yield",
        "concurrency-lane-leak",
        "concurrency-lane-double-acquire",
        "concurrency-lane-order-cycle",
        "concurrency-bad-yield-value",
        "concurrency-return-in-daemon",
        "obs-uncataloged-metric",
    ):
        assert metadata[rule_id]["properties"]["pack"] in (
            "concurrency", "obs"
        )
        assert metadata[rule_id]["shortDescription"]["text"]
    by_rule = {}
    for result in run["results"]:
        by_rule.setdefault(result["ruleId"], []).append(result)
    assert "concurrency-stale-read-after-yield" in by_rule
    # The re-acquire on the loop's second iteration is a double-acquire.
    assert "concurrency-lane-double-acquire" in by_rule
    stale = by_rule["concurrency-stale-read-after-yield"][0]
    region = stale["locations"][0]["physicalLocation"]["region"]
    assert region["startLine"] > 0
    assert region["startColumn"] > 0
    uri = stale["locations"][0]["physicalLocation"]["artifactLocation"]
    assert uri["uri"].endswith("tasks.py")


def test_sarif_suppressed_findings_are_absent(package_tree, capsys):
    root = package_tree(_tree({
        "repro.sched.tasks": """
            from repro.sched.core import Acquire, Lane, Release

            GC_LANE = Lane("gc")

            def background_gc_task(loop, ssd):
                yield Acquire(GC_LANE)
                if ssd.draining:
                    return  # almanac: ignore[concurrency-lane-leak] -- shutdown path, loop tears lanes down
                yield Release(GC_LANE)
        """,
    }))
    assert lint_main(
        [root, "--select", "concurrency-lane-leak", "--format", "sarif",
         "--no-cache"]
    ) == 0
    document = json.loads(capsys.readouterr().out)
    assert document["runs"][0]["results"] == []


# --- The extended contract report ---------------------------------------------


def test_report_gains_yield_point_and_lane_order_sections(package_tree):
    project = _project(package_tree, _tree({
        "repro.sched.tasks": """
            from repro.sched.core import Acquire, Delay, Lane, Release

            MAP_LANE = Lane("map")
            GC_LANE = Lane("gc")

            def background_gc_task(loop, ssd):
                yield Acquire(MAP_LANE)
                yield Acquire(GC_LANE)
                yield Release(GC_LANE)
                yield Release(MAP_LANE)
                yield Delay(10)
        """,
    }))
    text = render_report(project)
    assert "## Yield points" in text
    assert "### Task generators" in text
    assert "`repro.sched.tasks.background_gc_task`" in text
    assert "## Lane order" in text
    assert "MAP_LANE" in text and "GC_LANE" in text
    # Determinism: regenerating over the same project is byte-identical.
    assert render_report(project) == text


def test_report_lane_section_on_empty_graph(package_tree):
    project = _project(package_tree, _tree({
        "repro.sched.tasks": """
            from repro.sched.core import Delay

            def background_gc_task(loop, ssd):
                yield Delay(10)
        """,
    }))
    text = render_report(project)
    assert "the graph is empty" in text
