"""The concurrency pack: task roots, atomic sections, shared state.

Synthetic trees reuse the real root qualnames (``repro.ftl.ssd.BaseSSD
.write`` etc.) so the hard-coded task-root table applies to them; the
shipped tree's own cleanliness is asserted by
``test_runner.test_whole_tree_is_clean``.
"""

import textwrap

import pytest

from repro.analysis.concurrency.atomicity import atomic_index
from repro.analysis.concurrency.model import (
    SCHEDULABLE_CATEGORIES,
    TASK_ROOTS,
    SharedStatePolicy,
    policy_for,
    roots_by_name,
    schedulable_roots,
)
from repro.analysis.concurrency.report import HEADER, render_report
from repro.analysis.concurrency.shared_state import build_inventory
from repro.analysis.core import Project, SourceModule, collect_files
from repro.common.atomic import ATOMIC_ATTR, atomic_section

from tests.analysis.conftest import rule_ids


def _project(package_tree, files):
    root = package_tree(files)
    return Project(
        [SourceModule.from_path(p) for p in collect_files([root])]
    )


# --- Task-root model ----------------------------------------------------------


def test_task_roots_cover_expected_categories():
    categories = {root.category for root in TASK_ROOTS}
    assert categories == {"foreground", "background", "interposed", "exclusive"}
    assert SCHEDULABLE_CATEGORIES == frozenset({"foreground", "background"})


def test_roots_by_name_is_total_and_unique():
    by_name = roots_by_name()
    assert len(by_name) == len(TASK_ROOTS)
    assert set(by_name) == {root.name for root in TASK_ROOTS}


def test_schedulable_roots_excludes_interposed_and_exclusive():
    names = {root.name for root in schedulable_roots()}
    assert "fault-hooks" not in names
    assert "recovery" not in names
    assert "host-serve" in names
    assert "background-gc" in names


def test_task_root_declarations_are_well_formed():
    for root in TASK_ROOTS:
        assert root.description
        assert root.qualnames
        assert all(q.startswith("repro.") for q in root.qualnames)


def test_policy_for_matches_glob_owner_and_attr():
    assert policy_for("repro.ftl.ssd.BaseSSD", "gc_runs") is not None
    assert policy_for("repro.obs.metrics.Counter", "value") is not None
    assert policy_for("repro.nowhere.Nothing", "x") is None


def test_shared_state_policy_glob_semantics():
    policy = SharedStatePolicy(
        owner="repro.obs.*", attr="*", policy="monotonic", why="w"
    )
    assert policy.matches("repro.obs.metrics.Counter", "anything")
    assert not policy.matches("repro.ftl.ssd.BaseSSD", "anything")


# --- The @atomic_section decorator (runtime surface) --------------------------


def test_atomic_section_returns_the_function_unchanged():
    def step():
        return 41

    marked = atomic_section("one step")(step)
    assert marked is step
    assert marked() == 41


def test_atomic_section_attaches_metadata():
    @atomic_section("why it is one step", restores_state=True)
    def step():
        pass

    meta = getattr(step, ATOMIC_ATTR)
    assert meta == {"reason": "why it is one step", "restores_state": True}


def test_atomic_section_rejects_empty_reason():
    with pytest.raises(ValueError):
        atomic_section("")


def test_atomic_section_rejects_non_string_reason():
    with pytest.raises(ValueError):
        atomic_section(None)


def test_atomic_section_rejects_non_bool_restores_state():
    with pytest.raises(ValueError):
        atomic_section("fine", restores_state="yes")


# --- Atomic-section discovery (AST surface) -----------------------------------

IMPORT = "from repro.common.atomic import atomic_section\n"


def _with_import(body):
    """Prepend the atomic_section import to an (indented) source body."""
    return IMPORT + textwrap.dedent(body)


def test_atomic_index_collects_sections(package_tree):
    project = _project(
        package_tree,
        {
            "repro.ftl.ssd": _with_import("""
            class BaseSSD:
                @atomic_section("map+program as one", restores_state=True)
                def commit(self):
                    self.x = 1
            """),
        },
    )
    index = atomic_index(project)
    section = index.sections["repro.ftl.ssd.BaseSSD.commit"]
    assert section.reason == "map+program as one"
    assert section.restores_state is True
    assert index.malformed == []


def test_atomic_index_flags_empty_reason_as_malformed(lint_package):
    violations = lint_package(
        {
            "repro.ftl.ssd": _with_import("""
            class BaseSSD:
                @atomic_section("")
                def commit(self):
                    self.x = 1
            """),
        },
        rules=["concurrency-malformed-atomic"],
    )
    assert rule_ids(violations) == ["concurrency-malformed-atomic"]


def test_atomic_index_flags_non_literal_reason_as_malformed(lint_package):
    violations = lint_package(
        {
            "repro.ftl.ssd": _with_import("""
            WHY = "computed"


            class BaseSSD:
                @atomic_section(WHY)
                def commit(self):
                    self.x = 1
            """),
        },
        rules=["concurrency-malformed-atomic"],
    )
    assert rule_ids(violations) == ["concurrency-malformed-atomic"]


def test_atomic_index_flags_non_literal_restores_state(lint_package):
    violations = lint_package(
        {
            "repro.ftl.ssd": _with_import("""
            class BaseSSD:
                @atomic_section("fine", restores_state="yes")
                def commit(self):
                    self.x = 1
            """),
        },
        rules=["concurrency-malformed-atomic"],
    )
    assert rule_ids(violations) == ["concurrency-malformed-atomic"]


# --- Rule: unannotated flash mutators -----------------------------------------


def test_flash_mutation_reachable_from_root_is_flagged(lint_package):
    violations = lint_package(
        {
            "repro.ftl.ssd": """
            class BaseSSD:
                def write(self, lpa):
                    return self._do(lpa)

                def _do(self, lpa):
                    return self.device.program_page(lpa, None, None, 0)
            """,
        },
        rules=["concurrency-unannotated-flash-mutator"],
    )
    assert rule_ids(violations) == ["concurrency-unannotated-flash-mutator"]
    assert "BaseSSD._do" in violations[0].message
    assert "host-serve" in violations[0].message


def test_mutation_inside_atomic_section_is_clean(lint_package):
    violations = lint_package(
        {
            "repro.ftl.ssd": _with_import("""
            class BaseSSD:
                def write(self, lpa):
                    return self._do(lpa)

                @atomic_section("program commits in one step")
                def _do(self, lpa):
                    return self.device.program_page(lpa, None, None, 0)
            """),
        },
        rules=["concurrency-unannotated-flash-mutator"],
    )
    assert violations == []


def test_mutator_behind_atomic_wall_is_clean(lint_package):
    # The walk must not descend *through* an atomic section: a helper
    # only callable from inside one is covered by the section.
    violations = lint_package(
        {
            "repro.ftl.ssd": _with_import("""
            class BaseSSD:
                def write(self, lpa):
                    return self._commit(lpa)

                @atomic_section("one step")
                def _commit(self, lpa):
                    return self._raw(lpa)

                def _raw(self, lpa):
                    return self.device.program_page(lpa, None, None, 0)
            """),
        },
        rules=["concurrency-unannotated-flash-mutator"],
    )
    assert violations == []


def test_flash_layer_internals_are_not_flagged(lint_package):
    # The flash package IS the mutation layer; the rule polices the
    # firmware above it.
    violations = lint_package(
        {
            "repro.ftl.ssd": """
            from repro.flash.device import FlashDevice


            class BaseSSD:
                def __init__(self):
                    self.device = FlashDevice()

                def write(self, lpa):
                    return self.device.commit(lpa)
            """,
            "repro.flash.device": """
            class FlashDevice:
                def commit(self, lpa):
                    return self.program_page(lpa, None, None, 0)

                def program_page(self, lpa, data, oob, t):
                    return 0
            """,
        },
        rules=["concurrency-unannotated-flash-mutator"],
    )
    assert violations == []


def test_unreached_mutator_is_not_flagged(lint_package):
    # A mutator no schedulable root can reach is recovery/test surface.
    violations = lint_package(
        {
            "repro.ftl.ssd": """
            class BaseSSD:
                def write(self, lpa):
                    return lpa

                def scrub(self, lpa):
                    return self.device.erase_block(lpa, 0)
            """,
        },
        rules=["concurrency-unannotated-flash-mutator"],
    )
    assert violations == []


# --- Rule: re-entrant atomic sections -----------------------------------------


def test_atomic_section_calling_task_root_is_flagged(lint_package):
    violations = lint_package(
        {
            "repro.ftl.ssd": _with_import("""
            class BaseSSD:
                def write(self, lpa):
                    return lpa

                @atomic_section("one step")
                def _commit(self, lpa):
                    return self.write(lpa)
            """),
        },
        rules=["concurrency-reentrant-atomic"],
    )
    assert rule_ids(violations) == ["concurrency-reentrant-atomic"]
    assert "BaseSSD._commit" in violations[0].message
    assert "'host-serve'" in violations[0].message
    assert "write" in violations[0].message


def test_atomic_section_reaching_root_transitively_is_flagged(lint_package):
    violations = lint_package(
        {
            "repro.ftl.ssd": _with_import("""
            class BaseSSD:
                def write(self, lpa):
                    return lpa

                @atomic_section("one step")
                def _commit(self, lpa):
                    return self._indirect(lpa)

                def _indirect(self, lpa):
                    return self.write(lpa)
            """),
        },
        rules=["concurrency-reentrant-atomic"],
    )
    assert rule_ids(violations) == ["concurrency-reentrant-atomic"]


def test_atomic_section_calling_plain_helpers_is_clean(lint_package):
    violations = lint_package(
        {
            "repro.ftl.ssd": _with_import("""
            class BaseSSD:
                def write(self, lpa):
                    return self._commit(lpa)

                @atomic_section("one step")
                def _commit(self, lpa):
                    return self._helper(lpa)

                def _helper(self, lpa):
                    return lpa + 1
            """),
        },
        rules=["concurrency-reentrant-atomic"],
    )
    assert violations == []


# --- Rule: scheduler yields inside atomic sections ----------------------------


def test_async_atomic_section_is_flagged(lint_package):
    violations = lint_package(
        {
            "repro.ftl.ssd": _with_import("""
            class BaseSSD:
                @atomic_section("one step")
                async def _commit(self, lpa):
                    return lpa
            """),
        },
        rules=["concurrency-yield-in-atomic"],
    )
    assert rule_ids(violations) == ["concurrency-yield-in-atomic"]


def test_atomic_section_reaching_async_helper_is_flagged(lint_package):
    violations = lint_package(
        {
            "repro.ftl.ssd": _with_import("""
            class BaseSSD:
                @atomic_section("one step")
                def _commit(self, lpa):
                    return self._helper(lpa)

                async def _helper(self, lpa):
                    return lpa
            """),
        },
        rules=["concurrency-yield-in-atomic"],
    )
    assert rule_ids(violations) == ["concurrency-yield-in-atomic"]


def test_synchronous_atomic_section_is_clean(lint_package):
    violations = lint_package(
        {
            "repro.ftl.ssd": _with_import("""
            class BaseSSD:
                @atomic_section("one step")
                def _commit(self, lpa):
                    self.x = lpa
                    return self.x
            """),
        },
        rules=["concurrency-yield-in-atomic"],
    )
    assert violations == []


# --- Rule: exception-state consistency ----------------------------------------


def test_raise_after_attribute_store_is_flagged(lint_package):
    violations = lint_package(
        {
            "repro.ftl.ssd": _with_import("""
            class BaseSSD:
                @atomic_section("one step")
                def _commit(self, lpa):
                    self.cursor = lpa
                    if lpa < 0:
                        raise ValueError("bad lpa")
            """),
        },
        rules=["concurrency-atomic-raise-after-mutate"],
    )
    assert rule_ids(violations) == ["concurrency-atomic-raise-after-mutate"]
    assert "ValueError" in violations[0].message


def test_mutations_last_discipline_is_clean(lint_package):
    violations = lint_package(
        {
            "repro.ftl.ssd": _with_import("""
            class BaseSSD:
                @atomic_section("one step")
                def _commit(self, lpa):
                    if lpa < 0:
                        raise ValueError("bad lpa")
                    self.cursor = lpa
            """),
        },
        rules=["concurrency-atomic-raise-after-mutate"],
    )
    assert violations == []


def test_restores_state_waives_raise_after_mutate(lint_package):
    violations = lint_package(
        {
            "repro.ftl.ssd": _with_import("""
            class BaseSSD:
                @atomic_section("one step", restores_state=True)
                def _commit(self, lpa):
                    self.cursor = lpa
                    if lpa < 0:
                        raise ValueError("bad lpa")
            """),
        },
        rules=["concurrency-atomic-raise-after-mutate"],
    )
    assert violations == []


def test_caught_exception_does_not_count(lint_package):
    violations = lint_package(
        {
            "repro.ftl.ssd": _with_import("""
            class BaseSSD:
                @atomic_section("one step")
                def _commit(self, lpa):
                    self.cursor = lpa
                    try:
                        self._check(lpa)
                    except ValueError:
                        return None
                    return lpa

                def _check(self, lpa):
                    if lpa < 0:
                        raise ValueError("bad lpa")
            """),
        },
        rules=["concurrency-atomic-raise-after-mutate"],
    )
    assert violations == []


def test_loop_join_of_mutation_and_raise_is_flagged(lint_package):
    # Inside one loop the raise re-executes after earlier iterations'
    # mutations even when it textually precedes them.
    violations = lint_package(
        {
            "repro.ftl.ssd": _with_import("""
            class BaseSSD:
                @atomic_section("one step")
                def _commit(self, lpas):
                    for lpa in lpas:
                        self._check(lpa)
                        self.cursor = lpa

                def _check(self, lpa):
                    if lpa < 0:
                        raise ValueError("bad lpa")
            """),
        },
        rules=["concurrency-atomic-raise-after-mutate"],
    )
    assert rule_ids(violations) == ["concurrency-atomic-raise-after-mutate"]
    assert "one loop" in violations[0].message


def test_exception_set_collapses_to_one_finding(lint_package):
    violations = lint_package(
        {
            "repro.ftl.ssd": _with_import("""
            class BaseSSD:
                @atomic_section("one step")
                def _commit(self, lpa):
                    self.cursor = lpa
                    self._check(lpa)

                def _check(self, lpa):
                    if lpa < 0:
                        raise ValueError("negative")
                    if lpa > 100:
                        raise KeyError("huge")
                    if lpa == 13:
                        raise TypeError("unlucky")
            """),
        },
        rules=["concurrency-atomic-raise-after-mutate"],
    )
    assert len(violations) == 1
    assert "(+1 more)" in violations[0].message


# --- Rule: unclassified shared state ------------------------------------------

CONTENDED = {
    "repro.ftl.ssd": """
    from repro.ftl.scratch import ScratchPad


    class BaseSSD:
        def __init__(self):
            self.pad = ScratchPad()

        def write(self, lpa):
            return self.pad.poke(lpa)

        def _background_collect(self, start_us, deadline_us):
            return self.pad.prod()
    """,
    "repro.ftl.scratch": """
    class ScratchPad:
        def __init__(self):
            self.counter = 0

        def poke(self, lpa):
            self.counter = lpa
            return lpa

        def prod(self):
            self.counter = 0
    """,
}


def test_two_roots_writing_unclassified_attr_is_flagged(lint_package):
    violations = lint_package(
        CONTENDED, rules=["concurrency-unclassified-shared-state"]
    )
    assert rule_ids(violations) == ["concurrency-unclassified-shared-state"]
    assert "ScratchPad" in violations[0].message
    assert "counter" in violations[0].message


def test_single_writing_root_is_clean(lint_package):
    files = dict(CONTENDED)
    files["repro.ftl.ssd"] = """
    from repro.ftl.scratch import ScratchPad


    class BaseSSD:
        def __init__(self):
            self.pad = ScratchPad()

        def write(self, lpa):
            return self.pad.poke(lpa)

        def _background_collect(self, start_us, deadline_us):
            return deadline_us
    """
    violations = lint_package(
        files, rules=["concurrency-unclassified-shared-state"]
    )
    assert violations == []


def test_policy_covered_owner_is_clean(lint_package):
    # BaseSSD/* carries a declared policy in the model, so contention on
    # its own attributes is classified.
    violations = lint_package(
        {
            "repro.ftl.ssd": """
            class BaseSSD:
                def write(self, lpa):
                    self.gc_runs = lpa
                    return lpa

                def _background_collect(self, start_us, deadline_us):
                    self.gc_runs = 0
            """,
        },
        rules=["concurrency-unclassified-shared-state"],
    )
    assert violations == []


def test_stale_policy_is_silent_on_synthetic_trees(lint_package):
    # Synthetic trees exercise almost no policy; the staleness check
    # only applies when the policy table itself is part of the tree.
    violations = lint_package(
        CONTENDED, rules=["concurrency-stale-policy"]
    )
    assert violations == []


# --- Shared-state inventory (API surface) -------------------------------------


def test_inventory_reach_includes_transitive_helpers(package_tree):
    project = _project(package_tree, CONTENDED)
    inventory = build_inventory(project)
    assert "repro.ftl.scratch.ScratchPad.poke" in inventory.reach["host-serve"]
    assert (
        "repro.ftl.scratch.ScratchPad.prod"
        in inventory.reach["background-gc"]
    )


def test_inventory_descends_atomic_interiors(package_tree):
    # Unlike the flash-mutator walk, the *inventory* must see through
    # atomic walls: state written inside a section is still shared
    # state and still needs a declared policy.
    project = _project(
        package_tree,
        {
            "repro.ftl.ssd": _with_import("""
            class BaseSSD:
                def write(self, lpa):
                    return self._commit(lpa)

                @atomic_section("one step")
                def _commit(self, lpa):
                    return self._inner(lpa)

                def _inner(self, lpa):
                    self.cursor = lpa
            """),
        },
    )
    inventory = build_inventory(project)
    reach = inventory.reach["host-serve"]
    assert "repro.ftl.ssd.BaseSSD._commit" in reach
    assert "repro.ftl.ssd.BaseSSD._inner" in reach


def test_inventory_joins_declared_policies(package_tree):
    project = _project(
        package_tree,
        {
            "repro.ftl.ssd": """
            class BaseSSD:
                def write(self, lpa):
                    self.gc_runs = lpa
                    return lpa
            """,
        },
    )
    inventory = build_inventory(project)
    record = next(
        r
        for r in inventory.records
        if r.owner.endswith("BaseSSD") and r.attr == "gc_runs"
    )
    assert record.policy is not None
    assert record.policy.policy == "turnstile"


# --- The interleaving-contract report -----------------------------------------


def test_render_report_is_deterministic(package_tree):
    files = dict(CONTENDED)
    text_a = render_report(_project(package_tree, files))
    text_b = render_report(_project(package_tree, files))
    assert text_a == text_b
    assert text_a.startswith(HEADER)


def test_render_report_lists_sections_roots_and_state(package_tree):
    project = _project(
        package_tree,
        {
            "repro.ftl.ssd": _with_import("""
            class BaseSSD:
                def write(self, lpa):
                    self.gc_runs = lpa
                    return self._commit(lpa)

                @atomic_section("map+program as one")
                def _commit(self, lpa):
                    return lpa
            """),
        },
    )
    text = render_report(project)
    assert "## Task roots" in text
    assert "host-serve" in text
    assert "repro.ftl.ssd.BaseSSD._commit" in text
    assert "map+program as one" in text
    assert "gc_runs" in text


def test_committed_contract_is_generated_output():
    with open("docs/interleaving-contract.md", "r", encoding="utf-8") as fh:
        first = fh.readline().rstrip("\n")
    assert first == HEADER
