"""Layering pack: import order, the FTL flash monopoly, cycles."""

from tests.analysis.conftest import rule_ids

RULES = ["layering"]


def test_upward_import_flagged(lint_package):
    violations = lint_package(
        {"repro.flash.rogue": "from repro.ftl.ssd import RegularSSD\n"},
        rules=RULES,
    )
    assert rule_ids(violations) == ["layering-order"]
    assert "upward import" in violations[0].message
    assert violations[0].line == 1


def test_downward_and_same_layer_imports_clean(lint_package):
    violations = lint_package(
        {
            "repro.timessd.ok": (
                "import repro.flash.device\n"
                "from repro.common.units import SECOND_US\n"
                "from repro.ftl.mapping import x\n"  # same layer: allowed
            ),
            "repro.bench.ok": "from repro.workloads.msr import msr_trace\n",
        },
        rules=RULES,
    )
    assert violations == []


def test_relative_import_resolved_for_layering(lint_package):
    violations = lint_package(
        {
            "repro.flash.inner": "x = 1\n",
            "repro.flash.rogue": "from ..ftl import ssd\n",
        },
        rules=RULES,
    )
    assert rule_ids(violations) == ["layering-order"]


def test_unmapped_package_flagged(lint_package):
    violations = lint_package(
        {"repro.newthing.core": "x = 1\n"}, rules=RULES
    )
    # Both the module and the package __init__ sit in the unmapped package.
    assert set(rule_ids(violations)) == {"layering-order"}
    assert all("no layer assignment" in v.message for v in violations)


def test_flash_api_call_outside_ftl_flagged(lint_package):
    violations = lint_package(
        {
            "repro.workloads.rogue": (
                "def hammer(device, ppa, data, oob):\n"
                "    device.program_page(ppa, data, oob, 0)\n"
                "    device.erase_block(3)\n"
            )
        },
        rules=RULES,
    )
    assert rule_ids(violations) == ["layering-flash-api", "layering-flash-api"]
    assert "FTL-only" in violations[0].message


def test_flash_api_call_inside_ftl_clean(lint_package):
    violations = lint_package(
        {
            "repro.ftl.gc": (
                "def migrate(device, ppa, data, oob):\n"
                "    device.program_page(ppa, data, oob, 0)\n"
            ),
            "repro.timessd.gc2": (
                "def migrate(device, pba):\n"
                "    device.erase_block(pba)\n"
            ),
        },
        rules=RULES,
    )
    assert violations == []


def test_package_cycle_flagged(lint_package):
    violations = lint_package(
        {
            "repro.workloads.a": "from repro.security.b import x\n",
            "repro.security.b": "from repro.workloads.a import y\n",
        },
        rules=RULES,
    )
    assert rule_ids(violations) == ["layering-cycle", "layering-cycle"]
    assert "cycle" in violations[0].message


def test_acyclic_same_layer_imports_not_cyclic(lint_package):
    violations = lint_package(
        {
            "repro.security.uses": "from repro.workloads.gen import x\n",
            "repro.workloads.gen": "x = 1\n",
        },
        rules=RULES,
    )
    assert violations == []


def test_obs_importing_flash_flagged(lint_package):
    violations = lint_package(
        {"repro.obs.rogue": "from repro.flash.device import FlashDevice\n"},
        rules=["layering-obs-isolated"],
    )
    assert rule_ids(violations) == ["layering-obs-isolated"]
    assert "obs" in violations[0].message


def test_obs_importing_ftl_and_timessd_flagged(lint_package):
    violations = lint_package(
        {
            "repro.obs.rogue": (
                "from repro.ftl.ssd import RegularSSD\n"
                "import repro.timessd.ssd\n"
            )
        },
        rules=["layering-obs-isolated"],
    )
    assert rule_ids(violations) == [
        "layering-obs-isolated",
        "layering-obs-isolated",
    ]


def test_obs_importing_common_and_obs_clean(lint_package):
    violations = lint_package(
        {
            "repro.obs.fine": (
                "from repro.common.errors import ReproError\n"
                "from repro.obs.metrics import MetricsRegistry\n"
            )
        },
        rules=["layering-obs-isolated"],
    )
    assert violations == []


def test_real_obs_package_is_isolated():
    """The shipped obs package itself must satisfy the isolation rule."""
    import os

    from repro.analysis.core import analyze_paths, rules_by_id

    import repro.obs

    package_dir = os.path.dirname(repro.obs.__file__)
    violations = analyze_paths(
        [package_dir], rules_by_id(["layering-obs-isolated"])
    )
    assert violations == []
