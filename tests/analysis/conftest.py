"""Fixture helpers: feed source snippets through the lint driver."""

import textwrap

import pytest

from repro.analysis.core import analyze_paths, rules_by_id


def _write_tree(root, files):
    """Materialise ``{dotted.module.name: source}`` as a package tree."""
    root.mkdir(exist_ok=True)
    for module_name, source in files.items():
        parts = module_name.split(".")
        directory = root
        for part in parts[:-1]:
            directory = directory / part
            directory.mkdir(exist_ok=True)
            init = directory / "__init__.py"
            if not init.exists():
                init.write_text("")
        (directory / (parts[-1] + ".py")).write_text(
            textwrap.dedent(source)
        )
    return root


@pytest.fixture
def lint(tmp_path):
    """Lint one snippet as a standalone (package-less) file.

    Returns the violation list; ``rules=`` narrows to specific rule ids
    or pack names.
    """

    def run(source, rules=None, filename="snippet.py"):
        path = tmp_path / filename
        path.write_text(textwrap.dedent(source))
        chosen = rules_by_id(rules) if rules else None
        return analyze_paths([str(path)], chosen)

    return run


@pytest.fixture
def lint_package(tmp_path):
    """Lint a synthetic ``repro``-like package tree.

    ``files`` maps dotted module names (``repro.flash.foo``) to source
    snippets; ``__init__.py`` files are created automatically so module
    names resolve the same way they do in the real tree.
    """

    def run(files, rules=None):
        root = _write_tree(tmp_path / "pkg", files)
        chosen = rules_by_id(rules) if rules else None
        return analyze_paths([str(root)], chosen)

    return run


@pytest.fixture
def package_tree(tmp_path):
    """Write a synthetic package tree and return its root path (str)."""

    def build(files):
        return str(_write_tree(tmp_path / "pkg", files))

    return build


def rule_ids(violations):
    return [v.rule_id for v in violations]
