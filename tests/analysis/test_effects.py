"""Effect inference and the contract table: one seeded violation per
contract shape, plus the clean counterpart."""

from tests.analysis.conftest import rule_ids


def test_recovery_rng_contract_fires_through_helper(lint_package):
    violations = lint_package(
        {
            "repro.ftl.recovery": """
                def rebuild_from_flash(ssd):
                    return _shuffle(ssd)


                def _shuffle(ssd):
                    return ssd.rng.random()
            """,
        },
        rules=["effects-recovery-rng"],
    )
    assert "effects-recovery-rng" in rule_ids(violations)
    assert any("consumes-rng" in v.message for v in violations)


def test_recovery_without_rng_is_clean(lint_package):
    violations = lint_package(
        {
            "repro.ftl.recovery": """
                def rebuild_from_flash(ssd):
                    return sorted(ssd.pages)
            """,
        },
        rules=["effects-recovery-rng"],
    )
    assert violations == []


def test_read_path_flash_contract_sees_transitive_program(lint_package):
    violations = lint_package(
        {
            "repro.ftl.ssd": """
                class BaseSSD:
                    def read(self, lpa):
                        return self._fixup(lpa)

                    def _fixup(self, lpa):
                        return self.device.program_page(lpa, None, None, 0)
            """,
        },
        rules=["effects-read-path-flash"],
    )
    assert rule_ids(violations) == ["effects-read-path-flash"]
    assert "mutates-flash" in violations[0].message


def test_fault_hooks_only_from_precommit_points(lint_package):
    files = {
        "repro.faults.hooks": """
            class FaultHooks:
                def on_read(self, ppa):
                    return ppa
        """,
        "repro.flash.device": """
            from repro.faults.hooks import FaultHooks


            class FlashDevice:
                def __init__(self):
                    self.hooks = FaultHooks()

                def read_page(self, ppa):
                    return self.hooks.on_read(ppa)
        """,
    }
    assert lint_package(files, rules=["effects-fault-hook-sites"]) == []

    files["repro.ftl.sneaky"] = """
        from repro.faults.hooks import FaultHooks


        class Sneaky:
            def __init__(self):
                self.hooks = FaultHooks()

            def tamper(self, ppa):
                return self.hooks.on_read(ppa)
    """
    violations = lint_package(files, rules=["effects-fault-hook-sites"])
    assert rule_ids(violations) == ["effects-fault-hook-sites"]
    assert "repro.ftl.sneaky.Sneaky.tamper" in violations[0].message


def test_obs_may_only_raise_repro_error(lint_package):
    violations = lint_package(
        {
            "repro.obs.util": """
                def emit(x):
                    if x is None:
                        raise ValueError("boom")
                    return x
            """,
        },
        rules=["effects-obs-raises"],
    )
    assert rule_ids(violations) == ["effects-obs-raises"]
    assert "ValueError" in violations[0].message


def test_obs_raising_project_error_subclass_is_clean(lint_package):
    violations = lint_package(
        {
            "repro.common.errors": """
                class ReproError(Exception):
                    pass


                class TraceError(ReproError):
                    pass
            """,
            "repro.obs.util": """
                from repro.common.errors import TraceError


                def emit(x):
                    if x is None:
                        raise TraceError("boom")
                    return x
            """,
        },
        rules=["effects-obs-raises"],
    )
    assert violations == []


def test_caught_exception_does_not_escape(lint_package):
    violations = lint_package(
        {
            "repro.obs.util": """
                def emit(x):
                    try:
                        raise ValueError("boom")
                    except ValueError:
                        return 0
            """,
        },
        rules=["effects-obs-raises"],
    )
    assert violations == []
