#!/usr/bin/env python3
"""Fault drill: ransomware, a mid-attack power cut, and full recovery.

The worst Tuesday imaginable: ransomware is encrypting the drive when
the machine loses power mid-write.  The drill walks the device through
all of it with the fault-injection substrate (docs/FAULTS.md):

1. a ransomware-style pass overwrites documents with ciphertext;
2. an armed :class:`FaultPlan` cuts power mid-attack, tearing the page
   program it lands on;
3. reboot: volatile firmware state is dropped and every RAM table is
   rebuilt from OOB metadata, discarding the torn page;
4. the device self-audit (fsck) confirms every invariant;
5. TimeKits rolls the documents back to their pre-attack versions —
   no backup, no trusted host, byte-exact.

Run:  python examples/fault_drill.py
"""

import random

from repro.common.errors import PowerCutError
from repro.common.units import DAY_US, SECOND_US
from repro.faults.hooks import FaultHooks
from repro.faults.plan import FaultPlan
from repro.flash import FlashGeometry
from repro.timekits import TimeKits
from repro.timessd import ContentMode, TimeSSD, TimeSSDConfig
from repro.timessd.recovery import rebuild_from_flash
from repro.timessd.verify import DeviceAuditor

PAGE_SIZE = 512
DOCUMENTS = 24


def main():
    plan = FaultPlan(seed=0xD217)
    ssd = TimeSSD(
        TimeSSDConfig(
            geometry=FlashGeometry(
                channels=4,
                blocks_per_plane=16,
                pages_per_block=16,
                page_size=PAGE_SIZE,
            ),
            content_mode=ContentMode.REAL,
            retention_floor_us=DAY_US,
            faults=FaultHooks(plan),
        )
    )

    # A user's documents.
    originals = {}
    for lpa in range(DOCUMENTS):
        body = ("chapter %02d: results\n" % lpa).encode()
        originals[lpa] = (body * 40)[:PAGE_SIZE].ljust(PAGE_SIZE, b"\n")
        ssd.write(lpa, originals[lpa])
        ssd.clock.advance(2 * SECOND_US)
    pre_attack_us = ssd.clock.now_us
    print("wrote %d documents; snapshot time t=%d us" % (DOCUMENTS, pre_attack_us))
    ssd.clock.advance(5 * SECOND_US)  # the calm before the attack

    # The attack begins -- and the lights go out mid-encryption.  The
    # armed cut tears the very page program it lands on.
    plan.add_power_cut(at_op=plan.ops_seen + 20, torn=True)
    rng = random.Random(99)
    encrypted = 0
    try:
        for lpa in range(DOCUMENTS):
            ciphertext = bytes(rng.randrange(256) for _ in range(PAGE_SIZE))
            ssd.write(lpa, ciphertext)
            encrypted += 1
            ssd.clock.advance(SECOND_US // 4)
        print("ERROR: the armed power cut never fired")
        return 1
    except PowerCutError as exc:
        print("\nransomware encrypted %d/%d pages, then: %s"
              % (encrypted, DOCUMENTS, exc))

    # Reboot: volatile tables are gone, flash (incl. the torn page) stays.
    ssd.reset_volatile()
    stats = rebuild_from_flash(ssd)
    print("\nreboot -> rebuild from OOB metadata:")
    print("  remapped %d LPAs, %d retained pages, %d torn pages discarded"
          % (stats["mapped_lpas"], stats["retained_pages"], stats["torn_pages"]))

    report = DeviceAuditor(ssd).audit()
    print("self-audit: %d checks -> %s"
          % (report.checks_run, "clean" if report.clean else report.violations))

    # Roll every document back to its pre-attack state.
    kits = TimeKits(ssd)
    result = kits.rollback(0, cnt=DOCUMENTS, t=pre_attack_us)
    print("\nrollback to t=%d us: %d pages reverted in %.2f simulated ms"
          % (pre_attack_us, len(result.value), result.elapsed_us / 1000))

    intact = all(
        ssd.read(lpa)[0] == originals[lpa] for lpa in range(DOCUMENTS)
    )
    print("byte-exact rollback: %s" % ("yes" if intact else "NO"))
    return 0 if intact and report.clean else 1


if __name__ == "__main__":
    main()
