#!/usr/bin/env python3
"""Firmware resilience: power loss, self-audit, and encrypted history.

Three features beyond the basic time-travel property:

1. after a power cut, every RAM table is rebuilt from the OOB metadata
   the firmware wrote with each page (the reason the OOB layout of
   paper §3.7 exists);
2. the device can audit its own cross-structure invariants (an fsck);
3. with a retention key (paper §3.10), history is stored encrypted —
   readable only after unlocking, ciphertext to a chip-off attacker.

Run:  python examples/firmware_resilience.py
"""

import random

from repro.common.errors import QueryError
from repro.common.units import HOUR_US, SECOND_US
from repro.flash import FlashGeometry
from repro.timessd import ContentMode, TimeSSD, TimeSSDConfig
from repro.timessd.recovery import rebuild_from_flash, simulate_power_loss
from repro.timessd.verify import DeviceAuditor

KEY = b"a key only the owner knows"


def main():
    ssd = TimeSSD(
        TimeSSDConfig(
            geometry=FlashGeometry(
                channels=8, blocks_per_plane=32, pages_per_block=32, page_size=2048
            ),
            content_mode=ContentMode.REAL,
            retention_floor_us=24 * HOUR_US,
            retention_key=KEY,
        )
    )
    page = lambda text: text.encode().ljust(2048, b"\0")
    rng = random.Random(7)

    # Build up state and history.
    for round_no in range(6):
        for lpa in range(40):
            ssd.write(lpa, page("round-%d lpa-%d" % (round_no, lpa)))
        ssd.clock.advance(20 * SECOND_US)
    print("written 6 generations of 40 pages;",
          "%d versions retained" % ssd.retained_pages)

    # 1. Power loss: all RAM tables gone, flash intact.
    simulate_power_loss(ssd)
    stats = rebuild_from_flash(ssd)
    print("\npower loss -> rebuild from OOB metadata:")
    print("  remapped %d LPAs, %d retained pages, %d delta records"
          % (stats["mapped_lpas"], stats["retained_pages"], stats["delta_records"]))
    current, _ = ssd.read(7)
    print("  LPA 7 reads back: %r" % current.rstrip(b"\0").decode())

    # 2. Self-audit.
    report = DeviceAuditor(ssd).audit(sample_lpa_stride=3)
    print("\nself-audit: %d checks -> %s"
          % (report.checks_run, "clean" if report.clean else report.violations))

    # 3. Encrypted history: locked by default after (re)boot.
    try:
        ssd.version_chain(7)
        print("\nERROR: history should have been locked!")
    except QueryError as exc:
        print("\nhistory while locked: %s" % exc)
    ssd.unlock_retention(KEY)
    versions, _ = ssd.version_chain(7)
    print("after unlock: %d versions of LPA 7, oldest = %r"
          % (len(versions), versions[-1].data.rstrip(b"\0").decode()))


if __name__ == "__main__":
    main()
