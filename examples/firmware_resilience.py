#!/usr/bin/env python3
"""Firmware resilience: power loss, self-audit, encrypted history, aging.

Four features beyond the basic time-travel property:

1. after a power cut, every RAM table is rebuilt from the OOB metadata
   the firmware wrote with each page (the reason the OOB layout of
   paper §3.7 exists);
2. the device can audit its own cross-structure invariants (an fsck);
3. with a retention key (paper §3.10), history is stored encrypted —
   readable only after unlocking, ciphertext to a chip-off attacker;
4. flash media ages — charge leaks over months, queries disturb
   neighbouring cells — and the self-healing firmware (read-retry
   ladder + patrol scrub + data refresh, docs/RELIABILITY.md) keeps a
   device healthy that would otherwise lose data.

Run:  python examples/firmware_resilience.py
"""

import random

from repro.common.errors import QueryError
from repro.common.units import HOUR_US, SECOND_US
from repro.flash import FlashGeometry
from repro.flash.reliability import FlashReliability, UncorrectableReadError
from repro.timessd import ContentMode, TimeSSD, TimeSSDConfig
from repro.timessd.recovery import rebuild_from_flash, simulate_power_loss
from repro.timessd.verify import DeviceAuditor

KEY = b"a key only the owner knows"


def main():
    ssd = TimeSSD(
        TimeSSDConfig(
            geometry=FlashGeometry(
                channels=8, blocks_per_plane=32, pages_per_block=32, page_size=2048
            ),
            content_mode=ContentMode.REAL,
            retention_floor_us=24 * HOUR_US,
            retention_key=KEY,
        )
    )
    page = lambda text: text.encode().ljust(2048, b"\0")
    rng = random.Random(7)

    # Build up state and history.
    for round_no in range(6):
        for lpa in range(40):
            ssd.write(lpa, page("round-%d lpa-%d" % (round_no, lpa)))
        ssd.clock.advance(20 * SECOND_US)
    print("written 6 generations of 40 pages;",
          "%d versions retained" % ssd.retained_pages)

    # 1. Power loss: all RAM tables gone, flash intact.
    simulate_power_loss(ssd)
    stats = rebuild_from_flash(ssd)
    print("\npower loss -> rebuild from OOB metadata:")
    print("  remapped %d LPAs, %d retained pages, %d delta records"
          % (stats["mapped_lpas"], stats["retained_pages"], stats["delta_records"]))
    current, _ = ssd.read(7)
    print("  LPA 7 reads back: %r" % current.rstrip(b"\0").decode())

    # 2. Self-audit.
    report = DeviceAuditor(ssd).audit(sample_lpa_stride=3)
    print("\nself-audit: %d checks -> %s"
          % (report.checks_run, "clean" if report.clean else report.violations))

    # 3. Encrypted history: locked by default after (re)boot.
    try:
        ssd.version_chain(7)
        print("\nERROR: history should have been locked!")
    except QueryError as exc:
        print("\nhistory while locked: %s" % exc)
    ssd.unlock_retention(KEY)
    versions, _ = ssd.version_chain(7)
    print("after unlock: %d versions of LPA 7, oldest = %r"
          % (len(versions), versions[-1].data.rstrip(b"\0").decode()))

    # 4. Media aging: the same month, with and without the defenses.
    aging_drill()


def aging_device(defended, seed=0x50A4):
    """A small TimeSSD on deliberately leaky flash.

    Fresh pages sit far under the 16-bit ECC budget; after a few
    hundred hours of retention leakage a page crosses it, so a month
    without refresh must lose data.
    """
    config = TimeSSDConfig(
        geometry=FlashGeometry(
            channels=4, blocks_per_plane=16, pages_per_block=16
        ),
        retention_floor_us=2 * SECOND_US,
        bloom_capacity=128,
        bloom_segment_max_age_us=SECOND_US // 2,
        reliability=FlashReliability(
            raw_bit_error_rate=2e-4,
            ecc_correctable_bits=16,
            retention_ber_per_hour=0.05,
            read_disturb_ber_per_read=1e-3,
            retry_ber_factor=0.5,
            seed=seed,
        ),
        patrol_scrub=defended,
        read_retry_limit=4 if defended else 0,
    )
    return TimeSSD(config)


def aging_drill(seed=0x50A4):
    """A simulated month of retention leakage under query-heavy reads.

    Run twice — defenses on, defenses off — over the identical seeded
    workload: write a working set, then every ~30 simulated hours read
    it back (each sense also read-disturbs the block) with a little
    write churn.  With the retry ladder and patrol scrub enabled the
    firmware quietly refreshes pages before they drift past the ECC
    budget; with them disabled the same media loses data.
    """
    print("\naging drill: a simulated month on leaky flash")
    working_set, epochs, gap_us = 48, 24, 15_000  # 24 x 30 h = 30 days
    for defended in (True, False):
        ssd = aging_device(defended, seed)
        rng = random.Random(seed)
        errors = 0
        for lpa in range(working_set):
            ssd.write(lpa)
            ssd.clock.advance(gap_us)
        for _epoch in range(epochs):
            ssd.clock.advance(30 * HOUR_US)
            for lpa in range(working_set):
                try:
                    ssd.read(lpa)
                except UncorrectableReadError:
                    errors += 1
                ssd.clock.advance(gap_us)
            for _ in range(4):
                ssd.write(rng.randrange(working_set))
                ssd.clock.advance(gap_us)
        c = ssd.obs.metrics.snapshot()["counters"]
        label = "scrub+retry ON " if defended else "scrub+retry OFF"
        print("  %s: %d unreadable pages | %d retry-ladder reads, "
              "%d patrol reads, %d pages refreshed, %d ECC-corrected reads"
              % (label, errors,
                 c.get("reliability.retry_reads", 0),
                 c.get("scrub.patrol_reads", 0),
                 c.get("scrub.refreshed_valid", 0)
                 + c.get("scrub.refreshed_retained", 0),
                 c.get("flash.ecc.corrected_reads", 0)))
        if defended:
            assert errors == 0, "defended month must stay readable"
        else:
            assert errors > 0, "undefended month should demonstrate loss"


if __name__ == "__main__":
    main()
