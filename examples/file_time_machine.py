#!/usr/bin/env python3
"""Case study: a per-file time machine (paper §5.5.2 / Figure 11).

Replays a stream of synthetic source-tree commits, then reverts a file
to an earlier moment — like `git revert`, except the "repository" is the
SSD itself and works for any application, with no VCS in the loop.

Run:  python examples/file_time_machine.py
"""

from repro.common.units import DAY_US, MINUTE_US, MS_US, format_duration
from repro.casestudies import KERNEL_FILES, FileRevertStudy
from repro.flash import FlashGeometry
from repro.fs import PlainFS
from repro.timessd import ContentMode, TimeSSD, TimeSSDConfig


def main():
    ssd = TimeSSD(
        TimeSSDConfig(
            geometry=FlashGeometry(
                channels=8, blocks_per_plane=48, pages_per_block=32, page_size=2048
            ),
            content_mode=ContentMode.REAL,
            retention_floor_us=3 * DAY_US,
        )
    )
    fs = PlainFS(ssd)
    study = FileRevertStudy(fs, files=KERNEL_FILES, pages_per_file=8, seed=42)
    study.setup()

    print("replaying 300 commits at 100 commits/minute...")
    log = study.replay_commits(commits=300, commits_per_minute=100)
    print(
        "done: %d commits over %s of simulated time"
        % (len(log), format_duration(ssd.clock.now_us))
    )

    # Revert mmap.c to one minute ago, with increasing parallelism.
    t_past = ssd.clock.now_us - MINUTE_US
    print("\nreverting mmap.c to one minute earlier:")
    for threads in (1, 2, 4):
        outcome = study.revert_file("mmap.c", t_past, threads=threads)
        print(
            "  %d thread(s): %6.2f ms  (content verified: %s)"
            % (threads, outcome.elapsed_us / MS_US, "yes" if outcome.verified else "NO")
        )

    print("\nthe device's channel parallelism is what the extra threads buy —")
    print("independent chain walks overlap across flash channels (paper Fig. 11).")


if __name__ == "__main__":
    main()
