#!/usr/bin/env python3
"""Tour of the NVMe command layer (paper §4).

The paper wraps TimeKits in new NVMe commands so unmodified hosts can
speak to a TimeSSD through the standard driver stack.  This example
drives the device purely through NVMe submissions — including the
vendor opcodes — and shows how a regular SSD rejects them.

Run:  python examples/nvme_tour.py
"""

from repro import FlashGeometry, RegularSSD, SSDConfig
from repro.common.units import SECOND_US, format_duration
from repro.nvme import HostNVMeDriver, NVMeCommand, Opcode, StatusCode
from repro.timessd import ContentMode, TimeSSD, TimeSSDConfig


def main():
    geometry = FlashGeometry(channels=8, blocks_per_plane=32, pages_per_block=32)
    ssd = TimeSSD(TimeSSDConfig(geometry=geometry, content_mode=ContentMode.REAL))
    nvme = HostNVMeDriver(ssd)
    page = lambda text: text.encode().ljust(geometry.page_size, b"\0")

    # Admin: identify the controller.
    info = nvme.identify()
    print("Identify: model=%s  pages=%d  time-travel=%s" % (
        info.model, info.logical_pages, info.time_travel,
    ))

    # Standard I/O.
    nvme.write(100, [page("generation 1")])
    ssd.clock.advance(5 * SECOND_US)
    nvme.write(100, [page("generation 2")])
    print("READ 100 ->", nvme.read(100)[0].rstrip(b"\0").decode())

    # Vendor commands: inspect and rewind history.
    retention = nvme.retention_info()
    print("RETENTION_INFO: window=%s retained=%d pages" % (
        format_duration(retention["retention_window_us"]),
        retention["retained_pages"],
    ))
    history = nvme.addr_query_all(100)
    print("ADDR_QUERY_ALL: %d versions" % len(history[100]))
    nvme.rollback(100, t=0)
    print("after ROLLBACK(t=0):", nvme.read(100)[0].rstrip(b"\0").decode())

    # SMART log.
    log = nvme.smart_log()
    print("GET_LOG_PAGE: %d host writes, WA %.3f" % (
        log["host_pages_written"], log["write_amplification"],
    ))

    # A regular SSD answers the same standard commands...
    plain = HostNVMeDriver(RegularSSD(SSDConfig(geometry=geometry)))
    plain.write(0, [page("plain")])
    print("\nregular SSD read:", plain.read(0)[0].rstrip(b"\0").decode())
    # ...but completes vendor opcodes with INVALID_OPCODE.
    completion = plain.controller.submit(NVMeCommand(Opcode.ADDR_QUERY_ALL))
    print("regular SSD ADDR_QUERY_ALL ->", StatusCode(completion.status).name)


if __name__ == "__main__":
    main()
