#!/usr/bin/env python3
"""Quickstart: a time-traveling SSD in sixty lines.

Creates a TimeSSD, overwrites a page a few times, then uses TimeKits to
look back in time — the device-level equivalent of `git log` + checkout
for your storage.

Run:  python examples/quickstart.py
"""

from repro.common.units import HOUR_US, SECOND_US, format_duration
from repro.flash import FlashGeometry
from repro.timekits import TimeKits
from repro.timessd import ContentMode, TimeSSD, TimeSSDConfig


def main():
    # A small device: 8 channels x 32 blocks x 32 pages of 4 KiB.
    config = TimeSSDConfig(
        geometry=FlashGeometry(channels=8, blocks_per_plane=32, pages_per_block=32),
        content_mode=ContentMode.REAL,
        retention_floor_us=1 * HOUR_US,
    )
    ssd = TimeSSD(config)
    kits = TimeKits(ssd)
    page = lambda text: text.encode().ljust(config.geometry.page_size, b"\0")

    # Write three versions of logical page 42, ten simulated seconds apart.
    stamps = []
    for text in ("draft one", "draft two", "final version"):
        stamps.append(ssd.clock.now_us)
        ssd.write(42, page(text))
        ssd.clock.advance(10 * SECOND_US)

    current, _ = ssd.read(42)
    print("current content:   %r" % current.rstrip(b"\0").decode())
    print("retention window:  %s" % format_duration(ssd.retention_window_us()))

    # Every retained version, newest first (Table 1: AddrQueryAll).
    result = kits.addr_query_all(42)
    print("\nretained versions of LPA 42:")
    for version in result.value[42]:
        print(
            "  t=%-10s %-10s %r"
            % (
                format_duration(version.timestamp_us),
                version.source,
                version.data.rstrip(b"\0").decode(),
            )
        )
    print("query took %s of simulated device time" % format_duration(result.elapsed_us))

    # Roll the page back to its state as of the second write.
    kits.rollback(42, cnt=1, t=stamps[1])
    restored, _ = ssd.read(42)
    print("\nafter rollback to t=%s: %r" % (
        format_duration(stamps[1]),
        restored.rstrip(b"\0").decode(),
    ))

    # The rollback itself is retained: history now has four versions.
    result = kits.addr_query_all(42)
    print("versions after rollback: %d (rollback is undoable)" % len(result.value[42]))


if __name__ == "__main__":
    main()
