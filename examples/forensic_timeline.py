#!/usr/bin/env python3
"""Case study: storage forensics with a tamper-proof timeline (paper §2.2).

A malicious insider modifies records and then "covers their tracks" by
deleting files and overwriting logs.  Because TimeSSD retains history
below the block interface, the investigator reconstructs the exact
chronology of updates — evidence the host-level attacker could not
destroy.

Run:  python examples/forensic_timeline.py
"""

from repro.common.units import HOUR_US, MINUTE_US, SECOND_US, format_duration
from repro.flash import FlashGeometry
from repro.fs import PlainFS
from repro.timekits import ForensicTimeline, TimeKits
from repro.timessd import ContentMode, TimeSSD, TimeSSDConfig


def main():
    ssd = TimeSSD(
        TimeSSDConfig(
            geometry=FlashGeometry(
                channels=8, blocks_per_plane=32, pages_per_block=32, page_size=2048
            ),
            content_mode=ContentMode.REAL,
            retention_floor_us=24 * HOUR_US,
        )
    )
    fs = PlainFS(ssd)
    page = lambda text: text.encode().ljust(fs.page_size, b"\0")

    # Normal business: a ledger and an audit log, updated periodically.
    fs.create("ledger.db")
    fs.create("audit.log")
    for hour in range(6):
        fs.write_pages("ledger.db", 0, 1, [page("balance@h%d=1000" % hour)])
        fs.write_pages("audit.log", hour % 4, 1, [page("audit h%d: ok" % hour)])
        ssd.clock.advance(1 * HOUR_US)

    # The incident: tamper with the ledger, then scrub the audit log.
    incident_start = ssd.clock.now_us
    fs.write_pages("ledger.db", 0, 1, [page("balance=9999 (tampered)")])
    ssd.clock.advance(2 * MINUTE_US)
    for i in range(4):
        fs.write_pages("audit.log", i, 1, [page("")])  # overwrite log pages
        ssd.clock.advance(10 * SECOND_US)
    fs.delete("audit.log")  # ...and delete the file for good measure
    incident_end = ssd.clock.now_us
    ssd.clock.advance(1 * HOUR_US)

    kits = TimeKits(ssd)
    timeline = ForensicTimeline(kits)

    # 1. Burst detection: the tampering shows as an activity spike.
    counts, bucket_us, _ = timeline.activity_histogram(0, ssd.clock.now_us, buckets=16)
    print("write-activity histogram (%s per bucket):" % format_duration(int(bucket_us)))
    for i, count in enumerate(counts):
        print("  bucket %2d | %s" % (i, "#" * count))

    # 2. The incident's forensic footprint: exactly which pages changed.
    touched, _ = timeline.touched_lpas_between(incident_start, incident_end)
    print("\npages modified during the incident window: %s" % sorted(touched))

    # 3. Recover the scrubbed audit log's content from before the attack.
    ledger_lpa = fs.file_lpas("ledger.db")[0]
    result = kits.addr_query(ledger_lpa, cnt=1, t=incident_start - 1)
    before = result.value[ledger_lpa]
    print("\nledger before tampering: %r" % before.data.rstrip(b"\0").decode())
    current, _ = ssd.read(ledger_lpa)
    print("ledger after tampering:  %r" % current.rstrip(b"\0").decode())
    print("\nevidence chain survives OS-level scrubbing: the attacker could")
    print("delete files and overwrite logs, but not reach below the FTL.")


if __name__ == "__main__":
    main()
