#!/usr/bin/env python3
"""Case study: surviving an encryption-ransomware attack (paper §5.5.1).

Builds a small file system on a TimeSSD, lets a Locky-style ransomware
model encrypt it (delete-and-rewrite pattern), then recovers every file
from the device's retained history — without any backup ever having been
taken, and without trusting the (compromised) host OS.

Run:  python examples/ransomware_recovery.py
"""

from repro.common.units import DAY_US, SECOND_US
from repro.flash import FlashGeometry
from repro.fs import PlainFS
from repro.security import RANSOMWARE_FAMILIES, RansomwareAttack, RansomwareDefense
from repro.timessd import ContentMode, TimeSSD, TimeSSDConfig


def main():
    ssd = TimeSSD(
        TimeSSDConfig(
            geometry=FlashGeometry(
                channels=8, blocks_per_plane=32, pages_per_block=32, page_size=2048
            ),
            content_mode=ContentMode.REAL,
            retention_floor_us=3 * DAY_US,
        )
    )
    fs = PlainFS(ssd)

    # A user's documents.
    originals = {}
    for i in range(20):
        name = "thesis_chapter_%02d.tex" % i
        fs.create(name)
        body = ("\\section{Chapter %d}\n" % i).encode() * 60
        fs.write(name, 0, body.ljust(3 * fs.page_size, b"\n"))
        originals[name] = fs.read(name, 0, fs.file_size(name))
        ssd.clock.advance(5 * SECOND_US)
    print("created %d files" % len(originals))

    # The attack: Locky encrypts a copy and deletes the original.
    profile = RANSOMWARE_FAMILIES["Locky"]
    report = RansomwareAttack(fs, profile, seed=99).execute()
    print(
        "\n%s encrypted %d files in %.1f simulated seconds"
        % (profile.name, len(report.encrypted_files), report.duration_us / SECOND_US)
    )
    sample = report.encrypted_files[0]
    print("  %r is gone; %r holds ciphertext" % (sample, sample + ".locked"))

    # Recovery straight from the device's retained history.
    defense = RansomwareDefense(fs)
    outcome = defense.recover_with_timekits(report, threads=4)
    print(
        "\nrecovered %d/%d files in %.2f simulated seconds (4 threads)"
        % (
            outcome.files_recovered,
            len(report.encrypted_files),
            outcome.elapsed_us / SECOND_US,
        )
    )

    # Verify every byte.
    intact = all(
        fs.read(name, 0, len(originals[name])) == originals[name]
        for name in report.encrypted_files
    )
    print("byte-exact restoration: %s" % ("yes" if intact else "NO"))


if __name__ == "__main__":
    main()
